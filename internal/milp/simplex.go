package milp

import (
	"math"
)

// lpStatus is the outcome of an LP relaxation solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpUnbounded
	lpIterLimit
)

const (
	pivotTol  = 1e-9
	costTol   = 1e-9
	boundTol  = 1e-7
	phase1Tol = 1e-6
)

// nonbasic variable status.
type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	atZero // free variable parked at zero
	basic
)

// simplexLP is a bounded-variable two-phase revised simplex over the model's
// constraints, with per-solve lower/upper bound overrides (used by branch and
// bound). It returns the structural variable values on optimality.
type simplexLP struct {
	nRows   int
	nStruct int
	nArt    int // artificial columns appended after slacks

	cols [][]Term  // sparse column for every variable (structural, slack, artificial)
	b    []float64 // RHS per row
	lb   []float64
	ub   []float64
	cost []float64 // phase-2 costs

	basis  []int       // variable index basic in each row
	status []varStatus // per variable
	xB     []float64   // value of basic variable per row
	binv   [][]float64 // dense basis inverse

	phase1 bool
	iters  int
}

// solveLP solves the LP relaxation of m with the given bound overrides
// (nil means use the model's own bounds).
func solveLP(m *Model, lbO, ubO []float64) (lpStatus, []float64, float64) {
	lp := newSimplexLP(m, lbO, ubO)
	return lp.run(m)
}

func newSimplexLP(m *Model, lbO, ubO []float64) *simplexLP {
	nRows := len(m.constrs)
	nStruct := len(m.lb)
	lp := &simplexLP{
		nRows:   nRows,
		nStruct: nStruct,
		cols:    make([][]Term, nStruct, nStruct+2*nRows),
		b:       make([]float64, nRows),
		lb:      make([]float64, nStruct, nStruct+2*nRows),
		ub:      make([]float64, nStruct, nStruct+2*nRows),
		cost:    make([]float64, nStruct, nStruct+2*nRows),
	}
	copy(lp.cost, m.obj)
	if lbO == nil {
		copy(lp.lb, m.lb)
	} else {
		copy(lp.lb, lbO)
	}
	if ubO == nil {
		copy(lp.ub, m.ub)
	} else {
		copy(lp.ub, ubO)
	}
	for r, c := range m.constrs {
		lp.b[r] = c.RHS
		for _, t := range c.Terms {
			lp.cols[t.Var] = append(lp.cols[t.Var], Term{Var: r, Coef: t.Coef})
		}
	}
	// Slack per row: A·x + s = b with sense-dependent slack bounds.
	for r, c := range m.constrs {
		var lo, hi float64
		switch c.Sense {
		case LE:
			lo, hi = 0, math.Inf(1)
		case GE:
			lo, hi = math.Inf(-1), 0
		case EQ:
			lo, hi = 0, 0
		}
		lp.cols = append(lp.cols, []Term{{Var: r, Coef: 1}})
		lp.lb = append(lp.lb, lo)
		lp.ub = append(lp.ub, hi)
		lp.cost = append(lp.cost, 0)
	}
	return lp
}

func (lp *simplexLP) nonbasicValue(j int) float64 {
	switch lp.status[j] {
	case atLower:
		return lp.lb[j]
	case atUpper:
		return lp.ub[j]
	default:
		return 0
	}
}

func (lp *simplexLP) run(m *Model) (lpStatus, []float64, float64) {
	// Quick bound sanity (branching can cross bounds).
	for j := 0; j < len(lp.lb); j++ {
		if lp.lb[j] > lp.ub[j]+boundTol {
			return lpInfeasible, nil, 0
		}
	}

	nTotal := len(lp.cols)
	lp.status = make([]varStatus, nTotal, nTotal+lp.nRows)
	for j := 0; j < nTotal; j++ {
		switch {
		case !math.IsInf(lp.lb[j], -1):
			lp.status[j] = atLower
		case !math.IsInf(lp.ub[j], 1):
			lp.status[j] = atUpper
		default:
			lp.status[j] = atZero
		}
	}

	// Residual of each row with all variables (including slacks) nonbasic
	// at their parked values.
	resid := make([]float64, lp.nRows)
	copy(resid, lp.b)
	for j := 0; j < nTotal; j++ {
		v := lp.nonbasicValue(j)
		if v == 0 {
			continue
		}
		for _, t := range lp.cols[j] {
			resid[t.Var] -= t.Coef * v
		}
	}

	// Start from the slack basis where possible; rows whose slack cannot
	// absorb the residual get an artificial variable instead.
	lp.basis = make([]int, lp.nRows)
	lp.xB = make([]float64, lp.nRows)
	lp.binv = make([][]float64, lp.nRows)
	needPhase1 := false
	for r := 0; r < lp.nRows; r++ {
		lp.binv[r] = make([]float64, lp.nRows)
		lp.binv[r][r] = 1
		slack := lp.nStruct + r
		// Slack basic value if we pull it into the basis: its parked value
		// plus the residual it must absorb.
		val := lp.nonbasicValue(slack) + resid[r]
		if val >= lp.lb[slack]-boundTol && val <= lp.ub[slack]+boundTol {
			lp.basis[r] = slack
			lp.status[slack] = basic
			lp.xB[r] = val
			continue
		}
		// Clamp slack to its closest bound, cover the rest with an
		// artificial of matching sign.
		target := lp.lb[slack]
		if math.IsInf(target, -1) || math.Abs(val-lp.ub[slack]) < math.Abs(val-target) {
			target = lp.ub[slack]
		}
		if math.IsInf(target, -1) || math.IsInf(target, 1) {
			target = 0
		}
		if target == lp.lb[slack] {
			lp.status[slack] = atLower
		} else {
			lp.status[slack] = atUpper
		}
		rest := val - target
		sign := 1.0
		if rest < 0 {
			sign = -1
		}
		art := len(lp.cols)
		lp.cols = append(lp.cols, []Term{{Var: r, Coef: sign}})
		lp.lb = append(lp.lb, 0)
		lp.ub = append(lp.ub, math.Inf(1))
		lp.cost = append(lp.cost, 0)
		lp.status = append(lp.status, basic)
		lp.nArt++
		lp.basis[r] = art
		lp.xB[r] = math.Abs(rest)
		// The basis column for this row is the artificial (coefficient
		// `sign`), so the inverse's diagonal entry is 1/sign = sign.
		lp.binv[r][r] = sign
		needPhase1 = true
	}

	if needPhase1 {
		lp.phase1 = true
		st := lp.iterate(lp.phase1Cost())
		if st == lpIterLimit {
			return lpIterLimit, nil, 0
		}
		var infeas float64
		for r := 0; r < lp.nRows; r++ {
			if lp.basis[r] >= lp.nStruct+lp.nRows {
				infeas += lp.xB[r]
			}
		}
		for j := lp.nStruct + lp.nRows; j < len(lp.cols); j++ {
			if lp.status[j] != basic && lp.nonbasicValue(j) > phase1Tol {
				infeas += lp.nonbasicValue(j)
			}
		}
		if infeas > phase1Tol {
			return lpInfeasible, nil, 0
		}
		// Freeze artificials at zero for phase 2.
		for j := lp.nStruct + lp.nRows; j < len(lp.cols); j++ {
			lp.ub[j] = 0
		}
		lp.phase1 = false
	}

	cost := make([]float64, len(lp.cols))
	copy(cost, lp.cost)
	st := lp.iterate(cost)
	switch st {
	case lpUnbounded:
		return lpUnbounded, nil, 0
	case lpIterLimit:
		return lpIterLimit, nil, 0
	}

	x := make([]float64, lp.nStruct)
	for j := 0; j < lp.nStruct; j++ {
		if lp.status[j] != basic {
			x[j] = lp.nonbasicValue(j)
		}
	}
	for r, bi := range lp.basis {
		if bi < lp.nStruct {
			x[bi] = lp.xB[r]
		}
	}
	var obj float64
	for j := 0; j < lp.nStruct; j++ {
		obj += lp.cost[j] * x[j]
	}
	return lpOptimal, x, obj
}

// phase1Cost is 1 on artificial variables, 0 elsewhere. The phase-1 cost
// vector is extended lazily because artificials are appended after slacks.
func (lp *simplexLP) phase1Cost() []float64 {
	c := make([]float64, len(lp.cols))
	for j := lp.nStruct + lp.nRows; j < len(lp.cols); j++ {
		c[j] = 1
	}
	return c
}

// iterate runs primal simplex pivots with the given cost vector until
// optimality (lpOptimal), unboundedness, or the iteration cap.
func (lp *simplexLP) iterate(cost []float64) lpStatus {
	maxIter := 200*(lp.nRows+1) + 20*len(lp.cols)
	if maxIter < 2000 {
		maxIter = 2000
	}
	degenerate := 0
	y := make([]float64, lp.nRows)
	w := make([]float64, lp.nRows)

	for iter := 0; iter < maxIter; iter++ {
		lp.iters++
		bland := degenerate > 40

		// Dual values y = c_B · B⁻¹.
		for i := range y {
			y[i] = 0
		}
		for r, bi := range lp.basis {
			cb := cost[bi]
			if cb == 0 {
				continue
			}
			row := lp.binv[r]
			for i := 0; i < lp.nRows; i++ {
				y[i] += cb * row[i]
			}
		}

		// Pricing: pick the entering variable and its direction.
		enter, dir := -1, 1.0
		bestImprove := costTol
		for j := 0; j < len(lp.cols); j++ {
			if lp.status[j] == basic {
				continue
			}
			if lp.ub[j]-lp.lb[j] < boundTol && lp.status[j] != atZero {
				continue // fixed variable
			}
			d := cost[j]
			for _, t := range lp.cols[j] {
				d -= y[t.Var] * t.Coef
			}
			var improve float64
			var dj float64
			switch lp.status[j] {
			case atLower:
				improve, dj = -d, 1
			case atUpper:
				improve, dj = d, -1
			case atZero:
				if d < 0 {
					improve, dj = -d, 1
				} else {
					improve, dj = d, -1
				}
			}
			if improve > costTol {
				if bland {
					enter, dir = j, dj
					break
				}
				if improve > bestImprove {
					bestImprove, enter, dir = improve, j, dj
				}
			}
		}
		if enter == -1 {
			return lpOptimal
		}

		// Direction through the basis: w = B⁻¹ · A_enter.
		for i := range w {
			w[i] = 0
		}
		for _, t := range lp.cols[enter] {
			if t.Coef == 0 {
				continue
			}
			for i := 0; i < lp.nRows; i++ {
				w[i] += lp.binv[i][t.Var] * t.Coef
			}
		}

		// Ratio test. Entering moves by t ≥ 0 in direction dir; basic r
		// moves by −t·dir·w_r. The step is limited by the first basic
		// variable to hit a bound (tLeave) and by the entering variable's
		// own opposite bound (tFlip).
		tFlip := math.Inf(1)
		if !math.IsInf(lp.lb[enter], -1) && !math.IsInf(lp.ub[enter], 1) {
			tFlip = lp.ub[enter] - lp.lb[enter]
		}
		tLeave := math.Inf(1)
		leave, leaveToUpper := -1, false
		bestPivot := 0.0
		for r := 0; r < lp.nRows; r++ {
			delta := dir * w[r]
			bi := lp.basis[r]
			var limit float64
			var toUpper bool
			switch {
			case delta > pivotTol:
				if math.IsInf(lp.lb[bi], -1) {
					continue
				}
				limit = (lp.xB[r] - lp.lb[bi]) / delta
			case delta < -pivotTol:
				if math.IsInf(lp.ub[bi], 1) {
					continue
				}
				limit = (lp.ub[bi] - lp.xB[r]) / (-delta)
				toUpper = true
			default:
				continue
			}
			if limit < 0 {
				limit = 0
			}
			better := limit < tLeave-pivotTol
			tie := !better && limit < tLeave+pivotTol && leave != -1
			if better ||
				(tie && !bland && math.Abs(w[r]) > bestPivot) ||
				(tie && bland && lp.basis[r] < lp.basis[leave]) {
				if limit < tLeave {
					tLeave = limit
				}
				leave, leaveToUpper = r, toUpper
				bestPivot = math.Abs(w[r])
			}
		}

		t := math.Min(tFlip, tLeave)
		if math.IsInf(t, 1) {
			if lp.phase1 {
				// Phase-1 objective is bounded below by 0; cannot happen
				// except numerically. Treat as stalled.
				return lpIterLimit
			}
			return lpUnbounded
		}
		if t < pivotTol {
			degenerate++
		} else {
			degenerate = 0
		}

		if tFlip <= tLeave {
			// Bound flip: entering variable crosses to its other bound
			// without a basis change.
			for r := 0; r < lp.nRows; r++ {
				lp.xB[r] -= tFlip * dir * w[r]
			}
			if lp.status[enter] == atLower {
				lp.status[enter] = atUpper
			} else {
				lp.status[enter] = atLower
			}
			continue
		}

		// Pivot: entering becomes basic, leaving goes to a bound.
		tMax := tLeave
		enterVal := lp.nonbasicValue(enter) + dir*tMax
		out := lp.basis[leave]
		if leaveToUpper {
			lp.status[out] = atUpper
		} else {
			lp.status[out] = atLower
		}
		for r := 0; r < lp.nRows; r++ {
			if r != leave {
				lp.xB[r] -= tMax * dir * w[r]
			}
		}
		lp.basis[leave] = enter
		lp.status[enter] = basic
		lp.xB[leave] = enterVal

		// Eta update of the dense inverse.
		piv := w[leave]
		rowL := lp.binv[leave]
		inv := 1 / piv
		for i := 0; i < lp.nRows; i++ {
			rowL[i] *= inv
		}
		for r := 0; r < lp.nRows; r++ {
			if r == leave {
				continue
			}
			f := w[r]
			if f == 0 {
				continue
			}
			row := lp.binv[r]
			for i := 0; i < lp.nRows; i++ {
				row[i] -= f * rowL[i]
			}
		}
	}
	return lpIterLimit
}
