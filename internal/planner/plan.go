// Package planner implements FlexSP's parallelism planner (paper §4.1): given
// the sequences of one micro-batch, it chooses how many heterogeneous SP
// groups to form, each group's degree, and which group each sequence joins,
// minimizing the makespan (the maximum per-group execution time) subject to
// per-device memory.
//
// Three strategies are provided:
//
//   - StrategyMILP solves the paper-faithful bucketed formulation (problem
//     17) with the internal/milp branch-and-bound solver, warm-started by
//     the enumerative solution (our stand-in for SCIP).
//   - StrategyEnum (default) exploits the power-of-two structure: it
//     enumerates candidate degree multisets (binary partitions of N, or a
//     local search over them at large N), solves the per-configuration
//     assignment with a cost-aware LPT heuristic, and refines the best
//     configurations with a move/swap local search.
//   - StrategyGreedy is the naive "smallest feasible group" assignment the
//     paper argues against (§1, Time-Balanced Sequence Assignment); it is
//     kept as an ablation baseline.
package planner

import (
	"fmt"
	"sort"

	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
)

// Group is one sequence-parallel group of a plan: Degree devices jointly
// processing the assigned sequences.
type Group struct {
	Degree int
	Lens   []int
	// Range is the group's placed device range on a heterogeneous fleet
	// (Size == Degree). The zero value means "unplaced": homogeneous-cluster
	// plans leave placement to the executor, whose devices are
	// interchangeable.
	Range cluster.DeviceRange
}

// Placed reports whether the group carries an explicit device range.
func (g Group) Placed() bool { return g.Range.Size > 0 }

// Tokens returns the total tokens assigned to the group.
func (g Group) Tokens() int {
	t := 0
	for _, l := range g.Lens {
		t += l
	}
	return t
}

// Time returns the group's estimated execution time under the cost model.
func (g Group) Time(c costmodel.Coeffs) float64 { return c.GroupTime(g.Lens, g.Degree) }

func (g Group) String() string {
	return fmt.Sprintf("SP=%d(%d seqs, %d tokens)", g.Degree, len(g.Lens), g.Tokens())
}

// MicroPlan is the plan for one micro-batch: a set of SP groups executing
// concurrently.
type MicroPlan struct {
	Groups []Group
	// Time is the estimated makespan (max group time), seconds.
	Time float64
}

// Degrees returns the degree multiset of the plan's non-empty groups,
// descending.
func (p MicroPlan) Degrees() []int {
	var ds []int
	for _, g := range p.Groups {
		if len(g.Lens) > 0 {
			ds = append(ds, g.Degree)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// DevicesUsed sums the degrees of non-empty groups.
func (p MicroPlan) DevicesUsed() int {
	n := 0
	for _, g := range p.Groups {
		if len(g.Lens) > 0 {
			n += g.Degree
		}
	}
	return n
}

// Validate checks plan invariants against the cost model and the micro-batch
// it was built for: device budget, per-group memory, exact sequence coverage.
func (p MicroPlan) Validate(c costmodel.Coeffs, lens []int) error {
	if p.DevicesUsed() > c.Topo.NumDevices() {
		return fmt.Errorf("planner: plan uses %d devices > %d", p.DevicesUsed(), c.Topo.NumDevices())
	}
	want := map[int]int{}
	for _, l := range lens {
		want[l]++
	}
	for _, g := range p.Groups {
		if len(g.Lens) == 0 {
			continue
		}
		if !c.Topo.IsValidDegree(g.Degree) {
			return fmt.Errorf("planner: invalid degree %d", g.Degree)
		}
		if !c.Fits(g.Lens, g.Degree) {
			return fmt.Errorf("planner: group %v exceeds device memory", g)
		}
		for _, l := range g.Lens {
			want[l]--
			if want[l] < 0 {
				return fmt.Errorf("planner: unexpected sequence of length %d", l)
			}
		}
	}
	for l, n := range want {
		if n != 0 {
			return fmt.Errorf("planner: %d sequences of length %d unassigned", n, l)
		}
	}
	return nil
}

// ValidatePlaced checks a heterogeneous plan against the mixed fleet: every
// group must carry an aligned device range matching its degree, ranges must
// be disjoint and in bounds, each group must fit the memory of the classes
// it actually spans, and the plan must cover the micro-batch exactly.
func (p MicroPlan) ValidatePlaced(h costmodel.HeteroCoeffs, lens []int) error {
	n := h.Mixed.NumDevices()
	want := map[int]int{}
	for _, l := range lens {
		want[l]++
	}
	// Shape and bounds first: h.Group panics on malformed ranges, so every
	// range must be proven in-bounds before the cost model sees it.
	var placement cluster.GroupPlacement
	for _, g := range p.Groups {
		if len(g.Lens) == 0 {
			continue
		}
		if !g.Placed() {
			return fmt.Errorf("planner: group %v has no device range", g)
		}
		if g.Range.Size != g.Degree {
			return fmt.Errorf("planner: group %v range %v does not match its degree", g, g.Range)
		}
		if !h.Mixed.IsValidDegree(g.Degree) {
			return fmt.Errorf("planner: invalid degree %d", g.Degree)
		}
		placement.Ranges = append(placement.Ranges, g.Range)
	}
	if err := placement.Validate(n); err != nil {
		return err
	}
	for _, g := range p.Groups {
		if len(g.Lens) == 0 {
			continue
		}
		if !h.Group(g.Range).Fits(g.Lens, g.Degree) {
			return fmt.Errorf("planner: group %v exceeds memory of range %v", g, g.Range)
		}
		for _, l := range g.Lens {
			want[l]--
			if want[l] < 0 {
				return fmt.Errorf("planner: unexpected sequence of length %d", l)
			}
		}
	}
	for l, c := range want {
		if c != 0 {
			return fmt.Errorf("planner: %d sequences of length %d unassigned", c, l)
		}
	}
	return nil
}

// recomputeTime refreshes p.Time from the cost model.
func (p *MicroPlan) recomputeTime(c costmodel.Coeffs) {
	p.Time = 0
	for _, g := range p.Groups {
		if t := g.Time(c); t > p.Time {
			p.Time = t
		}
	}
}

// Strategy selects the planning algorithm.
type Strategy int

const (
	// StrategyEnum is the default enumerative solver.
	StrategyEnum Strategy = iota
	// StrategyMILP solves problem (17) with branch and bound.
	StrategyMILP
	// StrategyGreedy is the naive smallest-feasible-group baseline.
	StrategyGreedy
)

func (s Strategy) String() string {
	switch s {
	case StrategyEnum:
		return "enum"
	case StrategyMILP:
		return "milp"
	case StrategyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrInfeasible is returned when a micro-batch cannot fit the cluster under
// any group configuration.
var ErrInfeasible = fmt.Errorf("planner: micro-batch does not fit cluster memory")

// BucketMode selects the sequence-bucketing algorithm feeding the solver.
type BucketMode int

const (
	// BucketDP is the paper's adaptive dynamic-programming bucketing.
	BucketDP BucketMode = iota
	// BucketNaive uses fixed 2K-wide intervals (the §4.1.3 strawman).
	BucketNaive
	// BucketNone disables bucketing: every distinct length is its own
	// bucket (the "w/o BKT" ablation — accurate but far more expensive for
	// the MILP path).
	BucketNone
)

func (b BucketMode) String() string {
	switch b {
	case BucketDP:
		return "dp"
	case BucketNaive:
		return "naive"
	case BucketNone:
		return "none"
	default:
		return fmt.Sprintf("BucketMode(%d)", int(b))
	}
}

// NaiveBucketWidth is the fixed interval width of BucketNaive.
const NaiveBucketWidth = 2 << 10
