package planner

import (
	"context"
	"sort"
	"time"

	"flexsp/internal/bucket"
	"flexsp/internal/milp"
)

// planMILP solves the paper's bucketed MILP formulation (problem 17) with
// the internal branch-and-bound solver. The search is warm-started with the
// enumerative plan, so under a time budget the result is never worse than
// StrategyEnum's.
func (pl *Planner) planMILP(ctx context.Context, lens []int) (MicroPlan, error) {
	if len(lens) == 0 {
		return MicroPlan{}, nil
	}
	c := pl.Coeffs
	n := c.Topo.NumDevices()
	buckets := pl.bucketize(lens)
	k := len(lens)

	// Virtual groups: every degree with up to min(N/d, K) copies —
	// more groups than sequences can never all be occupied.
	var vgroups []int // degree per virtual group
	for _, d := range c.SPDegrees() {
		copies := n / d
		if copies > k {
			copies = k
		}
		for i := 0; i < copies; i++ {
			vgroups = append(vgroups, d)
		}
	}
	p := len(vgroups)
	q := len(buckets)

	m := milp.NewModel()
	// C: the makespan.
	cVar := m.AddVar(0, milp.Inf, 1, false, "C")
	// m_p: group selection.
	mVar := make([]int, p)
	for i := range vgroups {
		mVar[i] = m.AddVar(0, 1, 0, true, "m")
	}
	// A_{q,p}: sequences of bucket q assigned to group p.
	aVar := make([][]int, q)
	for qi := range buckets {
		aVar[qi] = make([]int, p)
		for pi := 0; pi < p; pi++ {
			aVar[qi][pi] = m.AddVar(0, float64(buckets[qi].Count()), 0, true, "A")
		}
	}

	// Per-(bucket, degree) unit costs, memoized per distinct degree: virtual
	// groups repeat each degree up to N/d times, and CommUnitTime — which
	// keeps the row linear (for ring CP it is the conservative no-overlap
	// bound) — and the group token capacity depend only on the degree.
	unitByDeg := map[int][]float64{}
	capByDeg := map[int]float64{}
	for _, d := range vgroups {
		if _, ok := unitByDeg[d]; ok {
			continue
		}
		cu := c.CommUnitTime(d)
		units := make([]float64, q)
		for qi := range buckets {
			s := float64(buckets[qi].Upper)
			units[qi] = (c.Alpha1*s*s+c.Alpha2*s)/float64(d) + s*cu
		}
		unitByDeg[d] = units
		capByDeg[d] = float64(c.MaxTokensPerGroup(d))
	}
	unitTime := func(qi, degree int) float64 { return unitByDeg[degree][qi] }

	for pi, deg := range vgroups {
		// Time (Cond. 18): Σ_q A·t + (β1+β2)·m_p ≤ C.
		terms := []milp.Term{{Var: cVar, Coef: -1}}
		beta := c.Beta1
		if deg > 1 {
			beta += c.Beta2
		}
		terms = append(terms, milp.Term{Var: mVar[pi], Coef: beta})
		for qi := range buckets {
			terms = append(terms, milp.Term{Var: aVar[qi][pi], Coef: unitTime(qi, deg)})
		}
		m.AddConstraint(terms, milp.LE, 0, "time")

		// Memory (Cond. 19): Σ_q A·ŝ ≤ group token capacity.
		memTerms := make([]milp.Term, 0, q)
		for qi := range buckets {
			memTerms = append(memTerms, milp.Term{Var: aVar[qi][pi], Coef: float64(buckets[qi].Upper)})
		}
		m.AddConstraint(memTerms, milp.LE, capByDeg[deg], "mem")

		// Linking (Cond. 21): Σ_q A ≤ K·m_p.
		linkTerms := make([]milp.Term, 0, q+1)
		for qi := range buckets {
			linkTerms = append(linkTerms, milp.Term{Var: aVar[qi][pi], Coef: 1})
		}
		linkTerms = append(linkTerms, milp.Term{Var: mVar[pi], Coef: -float64(k)})
		m.AddConstraint(linkTerms, milp.LE, 0, "link")
	}

	// Devices (Cond. 20): Σ_p d_p·m_p ≤ N.
	devTerms := make([]milp.Term, 0, p)
	for pi, deg := range vgroups {
		devTerms = append(devTerms, milp.Term{Var: mVar[pi], Coef: float64(deg)})
	}
	m.AddConstraint(devTerms, milp.LE, float64(n), "devices")

	// Assignment (Cond. 22): Σ_p A_{q,p} = b̂_q.
	for qi := range buckets {
		asTerms := make([]milp.Term, 0, p)
		for pi := 0; pi < p; pi++ {
			asTerms = append(asTerms, milp.Term{Var: aVar[qi][pi], Coef: 1})
		}
		m.AddConstraint(asTerms, milp.EQ, float64(buckets[qi].Count()), "assign")
	}

	// Symmetry breaking: same-degree virtual groups are interchangeable;
	// order selection flags and token loads.
	for pi := 0; pi+1 < p; pi++ {
		if vgroups[pi] != vgroups[pi+1] {
			continue
		}
		m.AddConstraint([]milp.Term{{Var: mVar[pi], Coef: 1}, {Var: mVar[pi+1], Coef: -1}},
			milp.GE, 0, "sym-m")
		loadTerms := make([]milp.Term, 0, 2*q)
		for qi := range buckets {
			s := float64(buckets[qi].Upper)
			loadTerms = append(loadTerms,
				milp.Term{Var: aVar[qi][pi], Coef: s},
				milp.Term{Var: aVar[qi][pi+1], Coef: -s})
		}
		m.AddConstraint(loadTerms, milp.GE, 0, "sym-load")
	}

	// Warm start from the enumerative plan.
	var incumbent []float64
	var warmPlan MicroPlan
	haveWarm := false
	if warm, err := pl.planEnum(ctx, lens); err == nil {
		warmPlan, haveWarm = warm, true
		incumbent = pl.encodeIncumbent(m.NumVars(), cVar, mVar, aVar, vgroups, buckets, warm)
		if incumbent != nil && !m.Feasible(incumbent) {
			incumbent = nil
		}
	}

	limit := pl.MILPTimeLimit
	if limit <= 0 {
		limit = 10 * time.Second
	}
	// A small relative gap matches practice: the paper accepts SCIP's first
	// good solution within its 5–15s window rather than a proven optimum.
	sol := milp.SolveContext(ctx, m, milp.Options{
		TimeLimit: limit, Incumbent: incumbent, Gap: 0.02, Workers: pl.MILPWorkers,
	})
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		return MicroPlan{}, ErrInfeasible
	}

	// Extract the plan: counts per (bucket, group) → actual sequences,
	// longest first within each bucket.
	remaining := make([][]int, q)
	for qi, b := range buckets {
		remaining[qi] = append([]int(nil), b.Lens...)
		sort.Sort(sort.Reverse(sort.IntSlice(remaining[qi])))
	}
	var plan MicroPlan
	for pi, deg := range vgroups {
		if sol.X[mVar[pi]] < 0.5 {
			continue
		}
		var glens []int
		for qi := range buckets {
			cnt := int(sol.X[aVar[qi][pi]] + 0.5)
			for j := 0; j < cnt && len(remaining[qi]) > 0; j++ {
				glens = append(glens, remaining[qi][0])
				remaining[qi] = remaining[qi][1:]
			}
		}
		if len(glens) == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.IntSlice(glens)))
		plan.Groups = append(plan.Groups, Group{Degree: deg, Lens: glens})
	}
	sort.SliceStable(plan.Groups, func(i, j int) bool { return plan.Groups[i].Degree > plan.Groups[j].Degree })
	plan.recomputeTime(c)
	// Under a time budget or a relative gap the branch and bound may settle
	// for a feasible-within-gap point; the enumerative warm start is a floor
	// on plan quality, so never return anything worse than it.
	if haveWarm && warmPlan.Time < plan.Time {
		return warmPlan, nil
	}
	return plan, nil
}

// encodeIncumbent converts an enumerative plan into a variable assignment of
// the MILP for warm starting. Returns nil if the plan cannot be encoded
// (e.g. more groups of one degree than virtual slots).
func (pl *Planner) encodeIncumbent(nvars, cVar int, mVar []int, aVar [][]int,
	vgroups []int, buckets []bucket.Bucket, warm MicroPlan) []float64 {

	x := make([]float64, nvars)
	// Virtual slots per degree, in declaration order.
	slots := map[int][]int{}
	for pi, deg := range vgroups {
		slots[deg] = append(slots[deg], pi)
	}
	used := map[int]int{}

	// bucketOf(l): index of the bucket containing length l.
	bucketOf := func(l int) int {
		for qi, b := range buckets {
			if l <= b.Upper {
				return qi
			}
		}
		return len(buckets) - 1
	}

	// Sort groups of equal degree by descending token load to satisfy the
	// symmetry-breaking constraints.
	groups := append([]Group(nil), warm.Groups...)
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Degree != groups[j].Degree {
			return groups[i].Degree > groups[j].Degree
		}
		return repTokens(groups[i], buckets) > repTokens(groups[j], buckets)
	})

	maxTime := 0.0
	c := pl.Coeffs
	for _, g := range groups {
		sl := slots[g.Degree]
		if used[g.Degree] >= len(sl) {
			return nil
		}
		pi := sl[used[g.Degree]]
		used[g.Degree]++
		x[mVar[pi]] = 1
		var sumS, sumS2 float64
		for _, l := range g.Lens {
			qi := bucketOf(l)
			x[aVar[qi][pi]]++
			s := float64(buckets[qi].Upper)
			sumS += s
			sumS2 += s * s
		}
		t := (c.Alpha1*sumS2+c.Alpha2*sumS)/float64(g.Degree) + c.Beta1
		if g.Degree > 1 {
			t += sumS*c.CommUnitTime(g.Degree) + c.Beta2
		}
		if t > maxTime {
			maxTime = t
		}
	}
	x[cVar] = maxTime + 1e-9
	return x
}

// repTokens sums a group's lengths mapped to bucket representatives.
func repTokens(g Group, buckets []bucket.Bucket) float64 {
	var t float64
	for _, l := range g.Lens {
		for _, b := range buckets {
			if l <= b.Upper {
				t += float64(b.Upper)
				break
			}
		}
	}
	return t
}
