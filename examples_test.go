// Compile-checked versions of the README snippets: each Example mirrors a
// documented usage, so the docs break the build instead of rotting.
package flexsp_test

import (
	"context"
	"fmt"
	"math/rand"

	"flexsp"
)

// Example_quickstart is the README quickstart: build a system (errors, not
// panics, on bad configuration), plan one varied-length batch through the
// unified entry point, execute the heterogeneous SP plans.
func Example_quickstart() {
	sys, err := flexsp.NewSystem(flexsp.Config{Devices: 64, Model: flexsp.GPT7B})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	batch := flexsp.CommonCrawl().Batch(rng, 128, 192<<10)

	plan, err := sys.Plan(ctx, batch, flexsp.PlanOptions{}) // default strategy: flexsp
	if err != nil {
		panic(err)
	}
	exec, err := plan.Execute(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Strategy(), len(plan.MicroPlans()) > 0, exec.Time > 0)
	// Output: flexsp true true
}

// Example_strategies is the README registry snippet: every system of the
// paper's evaluation is a named strategy behind the same Plan call.
func Example_strategies() {
	sys := flexsp.MustNewSystem(flexsp.Config{Devices: 64, Model: flexsp.GPT7B})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	batch := flexsp.CommonCrawl().Batch(rng, 128, 192<<10)

	for _, name := range flexsp.Strategies() {
		plan, err := sys.Plan(ctx, batch, flexsp.PlanOptions{Strategy: name, MaxCtx: 192 << 10})
		if err != nil {
			panic(err)
		}
		exec, err := plan.Execute(ctx)
		if err != nil {
			panic(err)
		}
		fmt.Println(name, plan.EstTime() > 0, exec.Time > 0)
	}
	// Output:
	// batchada true true
	// deepspeed true true
	// flexsp true true
	// megatron true true
	// pipeline true true
	// ring true true
}

// Example_pipelined is the README hybrid PP×SP snippet: the pipeline
// strategy sweeps PP degrees, plans flexible SP per stage, and executes the
// winning 1F1B schedule.
func Example_pipelined() {
	sys := flexsp.MustNewSystem(flexsp.Config{Devices: 64, Model: flexsp.GPT7B})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	batch := flexsp.CommonCrawl().Batch(rng, 128, 192<<10)

	plan, err := sys.Plan(ctx, batch, flexsp.PlanOptions{Strategy: flexsp.StrategyPipeline})
	if err != nil {
		panic(err)
	}
	sched, err := plan.Execute(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.EstTime() > 0, sched.Time > 0, sched.BubbleFrac >= 0)
	// Output: true true true
}

// Example_streaming is the README streaming quickstart: sequences arrive
// incrementally, the solver speculates on partial batches in the
// background, and Close returns a plan byte-identical to the one-shot path.
func Example_streaming() {
	sys := flexsp.MustNewSystem(flexsp.Config{Devices: 64, Model: flexsp.GPT7B})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	batch := flexsp.CommonCrawl().Batch(rng, 128, 192<<10)

	st, err := sys.PlanStream(flexsp.StreamOptions{Expect: len(batch)})
	if err != nil {
		panic(err)
	}
	for _, l := range batch { // sequences arrive one at a time
		if _, err := st.Append(l); err != nil {
			panic(err)
		}
	}
	plan, err := st.Close(ctx) // warm-started from the speculative incumbent
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Strategy(), len(plan.MicroPlans()) > 0)
	// Output: flexsp true
}

// Example_mixedCluster is the README mixed-cluster snippet: a heterogeneous
// fleet by spec, placement-aware planning, per-range costing on execution.
func Example_mixedCluster() {
	sys := flexsp.MustNewSystem(flexsp.Config{Cluster: "mixed:32xA100,32xH100", Model: flexsp.GPT7B})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	batch := flexsp.CommonCrawl().Batch(rng, 128, 192<<10)

	plan, err := sys.Plan(ctx, batch, flexsp.PlanOptions{}) // groups carry placed device ranges
	if err != nil {
		panic(err)
	}
	exec, err := plan.Execute(ctx) // per-range device-class costing
	if err != nil {
		panic(err)
	}
	placed := true
	for _, mp := range plan.MicroPlans() {
		for _, g := range mp.Groups {
			placed = placed && g.Placed()
		}
	}
	fmt.Println(placed, exec.Time > 0)
	// Output: true true
}
