// Package solver implements the overall FlexSP solver workflow (paper
// Alg. 1): given a global data batch, it derives the minimum feasible
// micro-batch count M_min, explores M ∈ [M_min, M_min+M′), blasts the batch
// into micro-batches for each M (internal/blaster), plans each micro-batch with
// the parallelism planner (internal/planner), and returns the plan sequence
// with the smallest total estimated time.
//
// Like the paper's implementation it is two-level parallel — micro-batch
// counts and micro-batches are solved concurrently, on a worker pool bounded
// by the machine's parallelism — and the Service type disaggregates solving
// from execution (§5): plans for future batches are computed in the
// background and handed to the executor in order. Identical micro-batch
// signatures in flight at once (adjacent M trials frequently blast out the
// same bucketed batch) are planned once and shared.
package solver

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"flexsp/internal/blaster"
	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/obs"
	"flexsp/internal/planner"
)

// Solver runs Alg. 1.
type Solver struct {
	// Planner plans each micro-batch.
	Planner *planner.Planner
	// Trials is M′, the number of micro-batch counts explored (default 5).
	Trials int
	// Sort controls the sequence-sorting step of the blaster (takeaway #2);
	// disabled only by the Fig. 7 "w/o Sort" ablation.
	Sort bool
	// Parallel enables the two-level multi-process solving of Alg. 1
	// (a bounded goroutine pool here).
	Parallel bool
	// Workers bounds the planning worker pool when Parallel is set; zero
	// means GOMAXPROCS.
	Workers int
	// Overhead is a fixed per-micro-batch cost (seconds) added to each
	// trial's total when comparing micro-batch counts — e.g. the exposed
	// ZeRO time, which grows with M (takeaway #1's fixed-cost argument).
	Overhead float64
	// Cache, when non-nil, memoizes micro-batch plans by bucketed length
	// signature, so recurring distributions skip the planner entirely.
	Cache *PlanCache

	stats solverStats
}

// solverStats holds the Solver's atomic counters behind Metrics.
type solverStats struct {
	solves   atomic.Int64
	canceled atomic.Int64
	planned  atomic.Int64
	deduped  atomic.Int64
	skipped  atomic.Int64
}

// SolverMetrics is a point-in-time snapshot of a Solver's counters. Unlike
// CacheStats (plan-level reuse inside the PlanCache), these count whole
// Solve calls and planner invocations, so a serving layer can report how
// much planning work the daemon actually did.
type SolverMetrics struct {
	// Solves is the number of completed Solve/SolveContext calls.
	Solves int64 `json:"solves"`
	// Canceled is the number of calls that returned early because their
	// context was canceled.
	Canceled int64 `json:"canceled"`
	// Planned is the number of micro-batches that reached the planner (a
	// cache hit or an in-flight dedup avoids one planner invocation).
	Planned int64 `json:"planned"`
	// Deduped is the number of micro-batches served by waiting on another
	// in-flight plan of the same signature instead of planning.
	Deduped int64 `json:"deduped"`
	// Skipped is the number of speculative solves a streaming session
	// avoided because the plan cache already covered the partial batch
	// (see Solver.CacheCovers).
	Skipped int64 `json:"skipped"`
}

// Metrics returns the solver's counter snapshot. The fields are individually
// atomic; to make the snapshot point-in-time consistent against concurrent
// solves it is re-read until two consecutive reads agree (bounded, since a
// hot solver may never quiesce — the final read is then the freshest view).
func (s *Solver) Metrics() SolverMetrics {
	read := func() SolverMetrics {
		return SolverMetrics{
			Solves:   s.stats.solves.Load(),
			Canceled: s.stats.canceled.Load(),
			Planned:  s.stats.planned.Load(),
			Deduped:  s.stats.deduped.Load(),
			Skipped:  s.stats.skipped.Load(),
		}
	}
	prev := read()
	for i := 0; i < 3; i++ {
		cur := read()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// New returns a Solver with the paper's defaults.
func New(pl *planner.Planner) *Solver {
	return &Solver{Planner: pl, Trials: blaster.DefaultTrials, Sort: true, Parallel: true}
}

// cacheCost returns the model the plan cache re-validates and re-times
// cached plans with: per-placement pricing on a mixed fleet (so cached and
// freshly-planned estimates stay comparable inside one Alg. 1 run), the
// scalar coefficients otherwise.
func (s *Solver) cacheCost() PlanCost {
	if s.Planner.Hetero != nil {
		return heteroPlanCost{Coeffs: s.Planner.Coeffs, h: *s.Planner.Hetero}
	}
	return s.Planner.Coeffs
}

// heteroPlanCost prices cached plans on a mixed fleet: placed groups by
// their device range, unplaced groups by the embedded bottleneck view.
type heteroPlanCost struct {
	costmodel.Coeffs
	h costmodel.HeteroCoeffs
}

func (c heteroPlanCost) PlacedGroupTime(r cluster.DeviceRange, lens []int, degree int) float64 {
	return c.h.Group(r).GroupTime(lens, degree)
}

func (c heteroPlanCost) PlacedFits(r cluster.DeviceRange, lens []int, degree int) bool {
	return c.h.Group(r).Fits(lens, degree)
}

// Result is the outcome of solving one data batch.
type Result struct {
	// Plans is the chosen micro-batch plan sequence.
	Plans []planner.MicroPlan
	// Time is Σ estimated micro-batch makespans.
	Time float64
	// M is the chosen micro-batch count.
	M int
	// MMin is the minimum feasible micro-batch count.
	MMin int
	// SolveWall is the wall-clock time the solve took.
	SolveWall time.Duration
	// Trials summarizes every explored micro-batch count — the rejected
	// alternatives behind the chosen M — for plan provenance (Explain).
	Trials []TrialSummary
}

// TrialSummary records one explored micro-batch count of Alg. 1.
type TrialSummary struct {
	// M is the micro-batch count tried.
	M int `json:"m"`
	// Time is the trial's total estimated time (0 when infeasible).
	Time float64 `json:"time"`
	// Feasible reports whether every micro-batch found a plan.
	Feasible bool `json:"feasible"`
	// Note carries the failure reason for infeasible trials.
	Note string `json:"note,omitempty"`
}

// ErrUnsolvable is returned when no explored micro-batch count yields a
// feasible plan.
var ErrUnsolvable = fmt.Errorf("solver: no feasible plan for batch")

// planPool is the bounded worker pool planning micro-batches: a fixed set of
// workers drains a task channel, replacing the historical trials×micros
// goroutine fan-out. A nil pool runs tasks inline (the Parallel=false path).
type planPool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

func newPlanPool(workers int) *planPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &planPool{tasks: make(chan func(), 2*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// do submits n tasks and waits for all of them. Task functions must not
// submit further tasks (the trial goroutines, not pool workers, fan out).
func (p *planPool) do(n int, task func(i int)) {
	if p == nil {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.tasks <- func() {
			defer wg.Done()
			task(i)
		}
	}
	wg.Wait()
}

func (p *planPool) close() {
	if p != nil {
		close(p.tasks)
		p.wg.Wait()
	}
}

// flightGroup deduplicates concurrent plans of identical micro-batch
// signatures (singleflight): when trials for M and M+1 blast out the same
// bucketed batch at once, one leader plans it and the others wait and reuse.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*flight
}

type flight struct {
	done chan struct{}
	sig  []int32 // sorted signature the leader is planning (collision guard)
	plan planner.MicroPlan
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[uint64]*flight)}
}

// start registers a flight for key. The second return is true when the
// caller became the leader and must call finish; false means another plan of
// the same signature is in progress and f.done can be awaited.
func (fg *flightGroup) start(key uint64, sig []int32) (*flight, bool) {
	fg.mu.Lock()
	defer fg.mu.Unlock()
	if f, ok := fg.m[key]; ok && SigsEqual(f.sig, sig) {
		return f, false
	}
	f := &flight{done: make(chan struct{}), sig: sig}
	fg.m[key] = f
	return f, true
}

func (fg *flightGroup) finish(key uint64, f *flight, plan planner.MicroPlan, err error) {
	fg.mu.Lock()
	if fg.m[key] == f {
		delete(fg.m, key)
	}
	fg.mu.Unlock()
	f.plan, f.err = plan, err
	close(f.done)
}

// Solve runs Alg. 1 on one data batch of sequence lengths.
func (s *Solver) Solve(batch []int) (Result, error) {
	return s.SolveContext(context.Background(), batch)
}

// SolveContext is Solve with cancellation: the context is checked at every
// trial and micro-batch boundary, so a canceled request (an HTTP client gone
// away, a draining server) stops consuming planner workers within one
// micro-batch plan. A canceled call returns ctx.Err(), never ErrUnsolvable.
func (s *Solver) SolveContext(ctx context.Context, batch []int) (Result, error) {
	return s.solve(ctx, batch, nil)
}

// solve is the Alg. 1 body behind SolveContext and SolveWarm. A non-nil warm
// state threads a streaming session's exact-signature micro-plan memo
// through planOne (see stream.go); nil is the plain cold path.
func (s *Solver) solve(ctx context.Context, batch []int, warm *warmState) (Result, error) {
	start := time.Now()
	ctx, span := obs.Start(ctx, "solver.solve")
	defer span.End()
	span.SetAttr("seqs", len(batch))
	trials := s.Trials
	if trials <= 0 {
		trials = blaster.DefaultTrials
	}
	mmin := blaster.MinMicroBatches(batch, s.Planner.TokenCapacity())
	span.SetAttr("m_min", mmin)
	if mmin == 0 && len(batch) > 0 {
		span.SetError(ErrUnsolvable)
		return Result{}, ErrUnsolvable
	}
	if mmin == 0 {
		s.stats.solves.Add(1)
		return Result{SolveWall: time.Since(start)}, nil
	}

	var pool *planPool
	if s.Parallel {
		pool = newPlanPool(s.Workers)
		defer pool.close()
	}
	flights := newFlightGroup()

	type trial struct {
		plans []planner.MicroPlan
		time  float64
		m     int
		err   error
	}
	runTrial := func(m int) trial {
		if err := ctx.Err(); err != nil {
			return trial{err: err}
		}
		tctx, tspan := obs.Start(ctx, "solver.trial")
		defer tspan.End()
		tspan.SetAttr("m", m)
		if m > len(batch) {
			err := fmt.Errorf("solver: m %d exceeds batch size", m)
			tspan.SetError(err)
			return trial{err: err}
		}
		var micro [][]int
		var err error
		if s.Sort {
			micro, err = blaster.Blast(batch, m)
		} else {
			micro, err = blaster.BlastUnsorted(batch, m)
		}
		if err != nil {
			tspan.SetError(err)
			return trial{err: err}
		}
		plans := make([]planner.MicroPlan, len(micro))
		errs := make([]error, len(micro))
		pool.do(len(micro), func(i int) {
			if errs[i] = ctx.Err(); errs[i] != nil {
				return
			}
			plans[i], errs[i] = s.planOne(tctx, flights, micro[i], warm)
		})
		total := s.Overhead * float64(len(plans))
		for i := range plans {
			if errs[i] != nil {
				tspan.SetError(errs[i])
				return trial{err: errs[i]}
			}
			total += plans[i].Time
		}
		tspan.SetAttr("est_time", total)
		return trial{plans: plans, time: total, m: m}
	}

	trialsOut := make([]trial, trials)
	if s.Parallel {
		var wg sync.WaitGroup
		for ti := 0; ti < trials; ti++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				trialsOut[ti] = runTrial(mmin + ti)
			}(ti)
		}
		wg.Wait()
	} else {
		for ti := 0; ti < trials; ti++ {
			trialsOut[ti] = runTrial(mmin + ti)
		}
	}

	best := Result{Time: math.Inf(1), MMin: mmin}
	summarize := func(tr trial, m int) {
		ts := TrialSummary{M: m, Feasible: tr.err == nil, Time: tr.time}
		if tr.err != nil {
			ts.Time = 0
			ts.Note = tr.err.Error()
		}
		best.Trials = append(best.Trials, ts)
	}
	for ti, tr := range trialsOut {
		summarize(tr, mmin+ti)
		if tr.err != nil {
			continue
		}
		if tr.time < best.Time {
			best.Plans, best.Time, best.M = tr.plans, tr.time, tr.m
		}
	}
	if math.IsInf(best.Time, 1) {
		// Every trial in [M_min, M_min+M′) was infeasible — typically when
		// a conservative bucketing inflates memory estimates. Widen the
		// window geometrically rather than fail, going through the same
		// runTrial path as the window (same sorting ablation, plan cache,
		// and parallel planning).
		for m := mmin + trials; m <= len(batch); m += trials {
			tr := runTrial(m)
			summarize(tr, m)
			if tr.err != nil {
				continue
			}
			best.Plans, best.Time, best.M = tr.plans, tr.time, tr.m
			break
		}
	}
	if err := ctx.Err(); err != nil {
		s.stats.canceled.Add(1)
		span.SetError(err)
		return Result{}, err
	}
	if math.IsInf(best.Time, 1) {
		span.SetError(ErrUnsolvable)
		return Result{}, ErrUnsolvable
	}
	best.SolveWall = time.Since(start)
	s.stats.solves.Add(1)
	span.SetAttr("m", best.M)
	span.SetAttr("est_time", best.Time)
	return best, nil
}

// planOne plans one micro-batch through the warm store, the cache and the
// in-flight deduplication: a streaming session's warm store returns memoized
// plans verbatim, cache hits return retargeted plans, concurrent identical
// signatures are planned once (singleflight, so the trials for M and M+1
// never plan the same bucketed batch twice), and everything else goes to
// the planner. Every successful outcome is recorded back into a non-nil
// warm state, and speculative solves withhold their plans from the shared
// cache (see stream.go for why both matter for byte-identity).
func (s *Solver) planOne(ctx context.Context, flights *flightGroup, lens []int, warm *warmState) (planner.MicroPlan, error) {
	ctx, span := obs.Start(ctx, "solver.micro")
	defer span.End()
	span.SetAttr("seqs", len(lens))
	var wsig []int32
	var wkey uint64
	if warm != nil {
		wsig, wkey = Signature(lens)
		if p, ok := warm.hit(wsig, wkey); ok {
			// The memoized plan is exactly what this solve's cold path
			// produced for this signature; a final (non-speculative) solve
			// also publishes it, so the cache ends up in the cold state.
			if s.Cache != nil && !warm.speculative {
				s.Cache.Put(lens, p)
			}
			span.SetAttr("tier", "warm")
			return p, nil
		}
	}
	record := func(p planner.MicroPlan, err error) (planner.MicroPlan, error) {
		if warm != nil && err == nil {
			warm.record(wsig, wkey, p)
		}
		return p, err
	}
	if s.Cache != nil {
		sig, key := s.Cache.signature(lens)
		if p, ok := s.Cache.getWithSig(s.cacheCost(), lens, sig, key); ok {
			span.SetAttr("tier", "cache-hit")
			return record(p, nil)
		}
		// Singleflight on the cache's rounded signature: the leader plans
		// and fills the cache, waiters re-read it and retarget.
		f, leader := flights.start(key, sig)
		if !leader {
			<-f.done
			if p, ok := s.Cache.getWithSig(s.cacheCost(), lens, sig, key); ok {
				s.Cache.noteDedup()
				s.stats.deduped.Add(1)
				span.SetAttr("tier", "dedup")
				return record(p, nil)
			}
			// Leader failed (or withheld its plan speculatively) or the
			// retarget was rejected; plan independently.
			s.stats.planned.Add(1)
			span.SetAttr("tier", "planned")
			return record(s.Planner.PlanContext(ctx, lens))
		}
		s.stats.planned.Add(1)
		span.SetAttr("tier", "planned")
		p, err := s.Planner.PlanContext(ctx, lens)
		if err == nil && (warm == nil || !warm.speculative) {
			s.Cache.Put(lens, p)
		}
		flights.finish(key, f, p, err)
		return record(p, err)
	}
	// No cache: deduplicate exact length multisets in flight and share the
	// identical plan.
	sig, key := Signature(lens)
	f, leader := flights.start(key, sig)
	if !leader {
		<-f.done
		if f.err == nil {
			s.stats.deduped.Add(1)
			span.SetAttr("tier", "dedup")
			return record(f.plan, nil)
		}
		s.stats.planned.Add(1)
		span.SetAttr("tier", "planned")
		return record(s.Planner.PlanContext(ctx, lens))
	}
	s.stats.planned.Add(1)
	span.SetAttr("tier", "planned")
	p, err := s.Planner.PlanContext(ctx, lens)
	flights.finish(key, f, p, err)
	return record(p, err)
}
