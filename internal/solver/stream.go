package solver

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"flexsp/internal/blaster"
	"flexsp/internal/obs"
	"flexsp/internal/planner"
)

// This file implements streaming ingestion with speculative warm-started
// solving: a Stream accumulates sequence lengths as they arrive and solves
// speculative partial batches in the background, so that by the time the
// batch closes the final solve is warm — or free, when the last speculation
// already solved the closed multiset.
//
// Warm starting is a pure accelerator, never an approximation. Two exact-
// signature mechanisms carry state from speculation to the final solve, and
// both provably reproduce the cold path's plans:
//
//   - Whole-batch reuse: when the closed multiset equals the multiset of the
//     latest speculative solve (the Expect hint fires that solve with the
//     final append), its Result is the cold result — the solver is a
//     deterministic function of the batch multiset.
//   - Micro-plan warm store: every speculative solve memoizes planOne's
//     outcome per exact micro-batch signature; the final solve probes the
//     store before the shared cache. A hit returns exactly what planOne
//     produced for that signature, so the final plans match a cold solve
//     under the same shared-cache state.
//
// Speculative solves read the shared PlanCache but never write it: plans
// derived from partial-batch shapes must not leak into the rounded cache,
// where a retarget could make a later cold solve diverge from a fresh one.
// The close-time solve (or whole-batch reuse) publishes the final batch's
// micro plans instead, leaving the cache exactly as a cold solve would.

// ErrStreamClosed is returned by Append and Close once a Stream has been
// closed or canceled.
var ErrStreamClosed = fmt.Errorf("solver: stream closed")

// Stream lifecycle events reported through StreamConfig.Observe, so a
// serving layer can count speculation activity without polling.
const (
	// StreamEventSpeculate marks a speculative solve being launched.
	StreamEventSpeculate = "speculate"
	// StreamEventSkip marks a speculative solve skipped because the shared
	// plan cache already covers the partial batch (see Solver.CacheCovers).
	StreamEventSkip = "skip"
	// StreamEventSupersede marks an in-flight speculation canceled because
	// newer arrivals (or a mismatched close) made its partial batch stale.
	StreamEventSupersede = "supersede"
	// StreamEventReuse marks a close served from a speculative result
	// instead of a fresh solve.
	StreamEventReuse = "reuse"
)

// DefaultWatermarks are the batch-fill fractions at which a Stream with an
// Expect hint launches speculative solves. The final append (100%) always
// triggers one more, so the full-batch solve overlaps the open→close gap.
var DefaultWatermarks = []float64{0.25, 0.50, 0.75, 0.90}

// DefaultMinSpeculate is the smallest partial batch a Stream without an
// Expect hint will speculate on.
const DefaultMinSpeculate = 8

// StreamConfig configures a streaming session.
type StreamConfig struct {
	// Expect is the anticipated sequence count. When set, speculation fires
	// as the batch crosses each Watermarks fraction of Expect (plus once at
	// Expect itself, so the final solve overlaps the append→close gap).
	// Zero falls back to growth-triggered speculation: a new speculative
	// solve whenever the batch has grown ~50% since the last one.
	Expect int
	// Watermarks are the batch-fill fractions (0, 1] that trigger
	// speculation when Expect is set; empty takes DefaultWatermarks.
	Watermarks []float64
	// Disabled turns speculation off entirely: Close runs a plain cold
	// solve, byte-identical to SolveContext on the accumulated batch.
	Disabled bool
	// MinSpeculate floors growth-triggered speculation (default
	// DefaultMinSpeculate).
	MinSpeculate int
	// Observe, when non-nil, receives one call per StreamEvent* constant as
	// the session speculates, skips, supersedes and reuses.
	Observe func(event string)
}

// StreamStats is a point-in-time snapshot of one session's speculation
// activity.
type StreamStats struct {
	// Appended is the total sequence count ingested so far.
	Appended int `json:"appended"`
	// Speculations counts speculative solves launched (including later-
	// canceled ones); Skipped counts those avoided by the cache probe, and
	// Superseded those canceled by newer arrivals or a mismatched close.
	Speculations int64 `json:"speculations"`
	Skipped      int64 `json:"skipped"`
	Superseded   int64 `json:"superseded"`
	// Reused reports that Close was served from a speculative result
	// without running a fresh solve.
	Reused bool `json:"reused"`
	// WarmHits counts micro-batches the warm store satisfied across the
	// session's solves (speculative and final).
	WarmHits int64 `json:"warmHits"`
}

// Stream is one streaming planning session over a Solver: Append ingests
// sequence lengths (concurrency-safe), watermark crossings launch background
// speculative solves, and Close runs the final solve warm-started from the
// best incumbent. A Stream must not outlive its Solver.
type Stream struct {
	s   *Solver
	cfg StreamConfig

	ctx    context.Context // parent of every speculative solve
	cancel context.CancelFunc

	mu         sync.Mutex
	lens       []int
	closed     bool
	thresholds []int // sorted trigger counts when Expect is set
	nextWM     int   // first threshold not yet crossed
	lastSpec   int   // batch size at the last speculation (growth mode)
	inc        *Incumbent
	spec       *speculation
	stats      StreamStats
}

// speculation is one in-flight speculative solve. res/inc/err are written
// before done is closed; readers must wait on done first.
type speculation struct {
	sig    []int32
	key    uint64
	cancel context.CancelFunc
	done   chan struct{}
	res    Result
	inc    *Incumbent
	err    error
}

// NewStream opens a streaming session on the solver.
func NewStream(s *Solver, cfg StreamConfig) *Stream {
	if len(cfg.Watermarks) == 0 {
		cfg.Watermarks = DefaultWatermarks
	}
	if cfg.MinSpeculate <= 0 {
		cfg.MinSpeculate = DefaultMinSpeculate
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := &Stream{s: s, cfg: cfg, ctx: ctx, cancel: cancel}
	if cfg.Expect > 0 {
		seen := map[int]bool{cfg.Expect: true}
		for _, w := range cfg.Watermarks {
			if w <= 0 || w > 1 {
				continue
			}
			c := int(math.Ceil(w * float64(cfg.Expect)))
			if c >= 1 {
				seen[c] = true
			}
		}
		for c := range seen {
			st.thresholds = append(st.thresholds, c)
		}
		sort.Ints(st.thresholds)
	}
	return st
}

// Append ingests sequence lengths and returns the session's total count. It
// is safe to call concurrently; a watermark crossing launches one background
// speculative solve for the current partial batch, canceling any in-flight
// speculation it supersedes.
func (st *Stream) Append(lens ...int) (int, error) {
	for _, l := range lens {
		if l <= 0 {
			return 0, fmt.Errorf("solver: non-positive sequence length %d", l)
		}
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return 0, ErrStreamClosed
	}
	st.lens = append(st.lens, lens...)
	total := len(st.lens)
	st.stats.Appended = total
	trigger := st.shouldSpeculateLocked(total)
	var snapshot []int
	if trigger {
		snapshot = append([]int(nil), st.lens...)
	}
	st.mu.Unlock()
	if trigger {
		st.speculate(snapshot)
	}
	return total, nil
}

// shouldSpeculateLocked decides whether this append triggers speculation.
// Crossing several watermarks in one append fires a single speculation (for
// the freshest snapshot). Past the Expect hint — or without one — the batch
// re-speculates each time it grows ~50%.
func (st *Stream) shouldSpeculateLocked(total int) bool {
	if st.cfg.Disabled {
		return false
	}
	if st.nextWM < len(st.thresholds) {
		fired := false
		for st.nextWM < len(st.thresholds) && total >= st.thresholds[st.nextWM] {
			st.nextWM++
			fired = true
		}
		if fired {
			st.lastSpec = total
		}
		return fired
	}
	if st.cfg.Expect <= 0 && total < st.cfg.MinSpeculate {
		return false
	}
	if st.lastSpec > 0 && total < st.lastSpec+(st.lastSpec+1)/2 {
		return false
	}
	st.lastSpec = total
	return true
}

// speculate launches a background solve of the snapshot, warm-started from
// the current incumbent, superseding any in-flight speculation first.
func (st *Stream) speculate(snapshot []int) {
	sig, key := Signature(snapshot)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	if st.spec != nil {
		st.spec.cancel()
		st.spec = nil
		st.stats.Superseded++
		st.mu.Unlock()
		st.observe(StreamEventSupersede)
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return
		}
	}
	prev := st.inc
	sctx, cancel := context.WithCancel(st.ctx)
	sp := &speculation{sig: sig, key: key, cancel: cancel, done: make(chan struct{})}
	st.spec = sp
	st.mu.Unlock()

	go func() {
		defer close(sp.done)
		defer cancel()
		if st.s.CacheCovers(snapshot) {
			// The shared cache already holds plans for every micro-batch
			// this partial batch would blast into: a speculative pass would
			// only re-derive them, so skip it and count the waste avoided.
			st.s.stats.skipped.Add(1)
			sp.err = errSpeculationSkipped
			st.mu.Lock()
			st.stats.Skipped++
			if st.spec == sp {
				st.spec = nil
			}
			st.mu.Unlock()
			st.observe(StreamEventSkip)
			return
		}
		st.mu.Lock()
		st.stats.Speculations++
		st.mu.Unlock()
		st.observe(StreamEventSpeculate)
		_, span := obs.Start(sctx, "solver.speculate")
		span.SetAttr("seqs", len(snapshot))
		res, inc, err := st.s.solveWarm(sctx, snapshot, prev, true)
		if err != nil {
			span.SetError(err)
		}
		span.End()
		sp.res, sp.inc, sp.err = res, inc, err
		st.mu.Lock()
		if err == nil {
			st.inc = inc
			st.stats.WarmHits += int64(inc.warmHits)
		}
		if st.spec == sp {
			st.spec = nil
		}
		st.mu.Unlock()
	}()
}

// errSpeculationSkipped marks a speculation resolved by the cache probe
// instead of a solve; Close falls through to its warm path on it.
var errSpeculationSkipped = fmt.Errorf("solver: speculation skipped, cache covers batch")

// Close seals the session and returns the plan for everything appended.
// With speculation enabled the solve is warm: an in-flight speculation of
// the exact closed multiset is awaited and reused, a completed one is reused
// directly, and otherwise a fresh solve warm-starts from the incumbent's
// micro-plan store. With speculation disabled (or nothing to reuse) this is
// exactly SolveContext, and the returned plans are byte-identical to the
// cold path's. Close and Append must not be assumed idempotent: the second
// Close returns ErrStreamClosed.
func (st *Stream) Close(ctx context.Context) (Result, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return Result{}, ErrStreamClosed
	}
	st.closed = true
	final := st.lens
	sp := st.spec
	st.spec = nil
	st.mu.Unlock()

	if st.cfg.Disabled {
		defer st.cancel()
		return st.s.SolveContext(ctx, final)
	}
	sig, key := Signature(final)
	if sp != nil {
		if sp.key == key && SigsEqual(sp.sig, sig) {
			// The in-flight speculation is solving exactly the closed
			// multiset (the Expect hint fires it with the final append):
			// await it instead of solving again.
			select {
			case <-sp.done:
			case <-ctx.Done():
				sp.cancel()
				st.cancel()
				return Result{}, ctx.Err()
			}
			if sp.err == nil {
				st.noteReuse()
				st.cancel()
				st.s.publishStore(sp.inc.store)
				return sp.res, nil
			}
			// Canceled, skipped, or failed: fall through to the warm solve.
		} else {
			sp.cancel()
			st.mu.Lock()
			st.stats.Superseded++
			st.mu.Unlock()
			st.observe(StreamEventSupersede)
		}
	}
	st.mu.Lock()
	inc := st.inc
	st.mu.Unlock()
	defer st.cancel()
	if inc != nil && inc.key == key && SigsEqual(inc.sig, sig) {
		st.noteReuse()
		st.s.publishStore(inc.store)
		return inc.res, nil
	}
	res, ninc, err := st.s.solveWarm(ctx, final, inc, false)
	if err != nil {
		return Result{}, err
	}
	st.mu.Lock()
	st.inc = ninc
	st.stats.WarmHits += int64(ninc.warmHits)
	st.mu.Unlock()
	return res, nil
}

func (st *Stream) noteReuse() {
	st.mu.Lock()
	st.stats.Reused = true
	st.mu.Unlock()
	st.observe(StreamEventReuse)
}

// Cancel abandons the session: in-flight speculation stops and further
// Append/Close calls return ErrStreamClosed. Safe to call repeatedly and
// concurrently with Append/Close (one of them wins the session).
func (st *Stream) Cancel() {
	st.mu.Lock()
	st.closed = true
	sp := st.spec
	st.spec = nil
	st.mu.Unlock()
	if sp != nil {
		sp.cancel()
	}
	st.cancel()
}

// Len returns the number of sequences appended so far.
func (st *Stream) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.lens)
}

// Stats returns a snapshot of the session's speculation activity.
func (st *Stream) Stats() StreamStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// Incumbent returns the latest completed speculative incumbent (nil before
// the first speculation completes) — exportable state for session handoff.
func (st *Stream) Incumbent() *Incumbent {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.inc
}

func (st *Stream) observe(ev string) {
	if st.cfg.Observe != nil {
		st.cfg.Observe(ev)
	}
}

// Incumbent is the state a speculative solve hands to the next one and to
// the final close-time solve: the partial batch's exact signature, its
// Result, and the exact-signature micro-plan warm store accumulated while
// producing it.
type Incumbent struct {
	sig      []int32
	key      uint64
	res      Result
	store    *microStore
	warmHits int
}

// Best returns the incumbent's solve result.
func (inc *Incumbent) Best() Result { return inc.res }

// WarmHits returns how many micro-batches the warm store satisfied while
// producing this incumbent.
func (inc *Incumbent) WarmHits() int { return inc.warmHits }

// IncumbentState is the serializable form of an Incumbent (see
// Incumbent.Export / ImportIncumbent): enough to migrate an in-progress
// streaming session's warm-start state between processes.
type IncumbentState struct {
	// Sig is the exact (granularity-1) signature of the batch the incumbent
	// solved.
	Sig []int32 `json:"sig"`
	// Result is the incumbent's solve result.
	Result Result `json:"result"`
	// Micro is the exact-signature micro-plan warm store.
	Micro []IncumbentMicro `json:"micro,omitempty"`
	// WarmHits mirrors Incumbent.WarmHits.
	WarmHits int `json:"warmHits,omitempty"`
}

// IncumbentMicro is one warm-store entry on the wire.
type IncumbentMicro struct {
	Sig  []int32           `json:"sig"`
	Plan planner.MicroPlan `json:"plan"`
}

// Export snapshots the incumbent for serialization. Entries are ordered by
// signature hash, so the export is deterministic.
func (inc *Incumbent) Export() IncumbentState {
	st := IncumbentState{
		Sig:      append([]int32(nil), inc.sig...),
		Result:   inc.res,
		WarmHits: inc.warmHits,
	}
	if inc.store != nil {
		inc.store.mu.Lock()
		keys := make([]uint64, 0, len(inc.store.m))
		for k := range inc.store.m {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			e := inc.store.m[k]
			st.Micro = append(st.Micro, IncumbentMicro{Sig: e.sig, Plan: e.plan})
		}
		inc.store.mu.Unlock()
	}
	return st
}

// ImportIncumbent rebuilds an Incumbent from its exported state, recomputing
// the signature hashes (the state carries signatures, not hashes, so a
// corrupted or hand-written state cannot alias a different batch).
func ImportIncumbent(state IncumbentState) *Incumbent {
	inc := &Incumbent{
		sig:      append([]int32(nil), state.Sig...),
		key:      sigHash(state.Sig),
		res:      state.Result,
		store:    newMicroStore(),
		warmHits: state.WarmHits,
	}
	for _, m := range state.Micro {
		inc.store.put(m.Sig, sigHash(m.Sig), m.Plan)
	}
	return inc
}

// SolveWarm is SolveContext warm-started from a previous (typically
// speculative) solve's incumbent. The returned plans are byte-identical to a
// cold solve under the same shared-cache state: an incumbent whose batch
// multiset equals this one short-circuits to its Result (the solver is
// deterministic per multiset), and otherwise the solve runs normally with
// planOne memoized by the incumbent's exact-signature warm store. The second
// return is the new incumbent for chaining. A nil incumbent degrades to a
// plain cold solve.
func (s *Solver) SolveWarm(ctx context.Context, batch []int, inc *Incumbent) (Result, *Incumbent, error) {
	return s.solveWarm(ctx, batch, inc, false)
}

// solveWarm implements SolveWarm; speculative solves additionally withhold
// their plans from the shared cache (partial-batch shapes must not leak into
// the rounded cache).
func (s *Solver) solveWarm(ctx context.Context, batch []int, inc *Incumbent, speculative bool) (Result, *Incumbent, error) {
	sig, key := Signature(batch)
	if inc != nil && inc.key == key && SigsEqual(inc.sig, sig) {
		if !speculative {
			s.publishStore(inc.store)
		}
		return inc.res, inc, nil
	}
	warm := &warmState{next: newMicroStore(), speculative: speculative}
	if inc != nil {
		warm.prev = inc.store
	}
	res, err := s.solve(ctx, batch, warm)
	if err != nil {
		return Result{}, nil, err
	}
	return res, &Incumbent{sig: sig, key: key, res: res, store: warm.next, warmHits: int(warm.hits.Load())}, nil
}

// CacheCovers reports whether the shared plan cache already holds an entry
// for every micro-batch the batch would blast into across the solve's trial
// window — the probe that lets a streaming session skip a speculative solve
// whose signatures are all cached (the close-time solve will hit them
// directly). The probe is read-only: it moves no LRU entries and counts no
// hits or misses.
func (s *Solver) CacheCovers(batch []int) bool {
	if s.Cache == nil || len(batch) == 0 {
		return false
	}
	trials := s.Trials
	if trials <= 0 {
		trials = blaster.DefaultTrials
	}
	mmin := blaster.MinMicroBatches(batch, s.Planner.TokenCapacity())
	if mmin == 0 {
		return false
	}
	for m := mmin; m < mmin+trials && m <= len(batch); m++ {
		var micro [][]int
		var err error
		if s.Sort {
			micro, err = blaster.Blast(batch, m)
		} else {
			micro, err = blaster.BlastUnsorted(batch, m)
		}
		if err != nil {
			return false
		}
		for _, lens := range micro {
			if !s.Cache.Contains(lens) {
				return false
			}
		}
	}
	return true
}

// publishStore publishes a reused incumbent's micro-plan store into the
// shared cache. The store holds one plan per exact micro signature the
// speculative solve touched — every trial M's micro-batches, exactly the
// set a cold solve of the same batch would have Put — so after a reuse the
// cache covers the batch as if it had been solved cold.
func (s *Solver) publishStore(ms *microStore) {
	if s.Cache == nil || ms == nil {
		return
	}
	ms.mu.Lock()
	entries := make([]storeEntry, 0, len(ms.m))
	for _, e := range ms.m {
		entries = append(entries, e)
	}
	ms.mu.Unlock()
	for _, e := range entries {
		lens := make([]int, len(e.sig))
		for i, v := range e.sig {
			lens[i] = int(v)
		}
		s.Cache.Put(lens, e.plan)
	}
}

// warmState threads the warm store through one solve: prev is the previous
// incumbent's memo (read), next accumulates this solve's planOne outcomes
// for the incumbent it produces, and speculative suppresses shared-cache
// writes.
type warmState struct {
	prev        *microStore
	next        *microStore
	speculative bool
	hits        atomic.Int64
}

// hit probes the previous incumbent's store; hits are copied forward into
// the next store so warm state survives chained speculations.
func (w *warmState) hit(sig []int32, key uint64) (planner.MicroPlan, bool) {
	if w.prev == nil {
		return planner.MicroPlan{}, false
	}
	p, ok := w.prev.get(sig, key)
	if !ok {
		return planner.MicroPlan{}, false
	}
	w.hits.Add(1)
	w.next.put(sig, key, p)
	return p, true
}

func (w *warmState) record(sig []int32, key uint64, p planner.MicroPlan) {
	w.next.put(sig, key, p)
}

// microStore is an exact-signature micro-plan memo: the per-session warm
// store carried between speculative solves. Unlike the shared PlanCache it
// never retargets — a hit returns the plan verbatim, which is what makes
// warm-started finals byte-identical to cold solves.
type microStore struct {
	mu sync.Mutex
	m  map[uint64]storeEntry
}

type storeEntry struct {
	sig  []int32
	plan planner.MicroPlan
}

func newMicroStore() *microStore {
	return &microStore{m: make(map[uint64]storeEntry)}
}

func (ms *microStore) get(sig []int32, key uint64) (planner.MicroPlan, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	e, ok := ms.m[key]
	if !ok || !SigsEqual(e.sig, sig) {
		return planner.MicroPlan{}, false
	}
	return e.plan, true
}

func (ms *microStore) put(sig []int32, key uint64, p planner.MicroPlan) {
	ms.mu.Lock()
	ms.m[key] = storeEntry{sig: sig, plan: p}
	ms.mu.Unlock()
}

func (ms *microStore) len() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.m)
}
