package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON format.
// Timestamps and durations are microseconds; ph "X" is a complete event.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object chrome://tracing and Perfetto load.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// flatSpan is a span flattened for export.
type flatSpan struct {
	ts    float64 // µs
	dur   float64 // µs
	ended bool
	attrs []Attr
}

// WriteChrome exports the trace as Chrome trace_event JSON, loadable in
// chrome://tracing and Perfetto. The export is deterministic for a fixed
// clock: spans are visited depth-first in start order (creation order breaks
// ties), and overlapping siblings are spread across lanes (tid) greedily — a
// child stays on its parent's lane when the lane is free at its start time,
// otherwise it takes the lowest free lane. Unfinished spans are exported with
// their duration-so-far and an "unfinished" arg.
func (t *Trace) WriteChrome(w io.Writer) error {
	now := t.clock()
	var events []chromeEvent
	// busyUntil[lane] is the time (µs) at which the lane frees up.
	var busyUntil []float64

	var walk func(s *Span, parentLane int)
	walk = func(s *Span, parentLane int) {
		dur, ended, attrs, children := s.snapshot(now)
		fs := flatSpan{
			ts:    float64(s.start.Nanoseconds()) / 1e3,
			dur:   float64(dur.Nanoseconds()) / 1e3,
			ended: ended,
			attrs: attrs,
		}
		// Greedy lane assignment: prefer the parent's lane, else the first
		// lane free at fs.ts, else a fresh lane.
		lane := -1
		if parentLane >= 0 && busyUntil[parentLane] <= fs.ts {
			lane = parentLane
		} else {
			for i := range busyUntil {
				if busyUntil[i] <= fs.ts {
					lane = i
					break
				}
			}
			if lane < 0 {
				busyUntil = append(busyUntil, 0)
				lane = len(busyUntil) - 1
			}
		}
		busyUntil[lane] = fs.ts + fs.dur
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   fs.ts,
			Dur:  fs.dur,
			Pid:  1,
			Tid:  lane + 1,
		}
		if len(attrs) > 0 || !ended {
			ev.Args = make(map[string]any, len(attrs)+1)
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value
			}
			if !ended {
				ev.Args["unfinished"] = true
			}
		}
		events = append(events, ev)
		// Visit children in start order; creation order (seq) breaks ties so
		// the export is stable even when spans share a timestamp.
		sort.SliceStable(children, func(i, j int) bool {
			if children[i].start != children[j].start {
				return children[i].start < children[j].start
			}
			return children[i].seq < children[j].seq
		})
		for _, c := range children {
			walk(c, lane)
		}
	}
	walk(t.root, -1)

	file := chromeFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"traceId": t.id},
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}
