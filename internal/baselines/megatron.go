package baselines

import (
	"flexsp/internal/costmodel"
	"flexsp/internal/packing"
)

// MegatronStrategy is one point of Megatron-LM's hybrid-parallelism grid:
// tensor parallelism (with Megatron-style SP at the same degree) × context
// parallelism × pipeline parallelism × data parallelism, with
// DP = N / (TP·CP·PP).
type MegatronStrategy struct {
	TP, CP, PP int
}

// Span returns the devices of one model replica.
func (s MegatronStrategy) Span() int { return s.TP * s.CP * s.PP }

// DP returns the data-parallel degree on an n-device cluster.
func (s MegatronStrategy) DP(n int) int { return n / s.Span() }

// MegatronResult is the costed outcome of running a batch under one
// strategy.
type MegatronResult struct {
	Strategy MegatronStrategy
	// Recompute is the checkpointing level needed to fit (Appendix B.2).
	Recompute costmodel.RecomputePolicy
	// Time is the estimated iteration seconds.
	Time float64
	// Comm is the critical-path communication (TP collectives + exposed CP
	// ring traffic + PP point-to-point).
	Comm float64
	// Rounds is the gradient-accumulation micro-batch count per replica.
	Rounds int
}

// Megatron sweeps the (TP, CP, PP) grid — TP within a node, as Megatron-TP's
// all-reduces require NVLink — and returns the best feasible strategy's
// result, emulating the paper's manual tuning (§6.1/Appendix B.2). If a
// strategy cannot fit the context length, heavier activation checkpointing
// is applied, as the paper's protocol does.
func Megatron(c costmodel.Coeffs, batch []int, maxCtx int) (MegatronResult, error) {
	n := c.Topo.NumDevices()
	best := MegatronResult{}
	found := false
	policies := []costmodel.RecomputePolicy{
		c.Model.Recompute, costmodel.RecomputeMLP, costmodel.RecomputeFull,
	}
	seen := map[costmodel.RecomputePolicy]bool{}
	for _, pol := range policies {
		if seen[pol] {
			continue
		}
		seen[pol] = true
		cc := c.WithRecompute(pol)
		for tp := 1; tp <= 2*c.Topo.DevicesPerNode && tp <= n; tp *= 2 {
			for cp := 1; tp*cp <= n; cp *= 2 {
				for pp := 1; tp*cp*pp <= n; pp *= 2 {
					s := MegatronStrategy{TP: tp, CP: cp, PP: pp}
					res, ok := megatronCost(cc, batch, maxCtx, s)
					if !ok {
						continue
					}
					res.Recompute = pol
					if !found || res.Time < best.Time {
						best, found = res, true
					}
				}
			}
		}
	}
	if !found {
		return MegatronResult{}, ErrInfeasible
	}
	return best, nil
}

// megatronCost models one strategy. A model replica spans TP·CP·PP devices:
// activations are sharded over TP·CP (Megatron-SP and CP both shard all
// activations) with layers split over PP stages; weights and gradients are
// sharded by TP·PP, optimizer states further by DP (ZeRO-1 / distributed
// optimizer).
func megatronCost(c costmodel.Coeffs, batch []int, maxCtx int, s MegatronStrategy) (MegatronResult, bool) {
	n := c.Topo.NumDevices()
	span := s.Span()
	if span > n {
		return MegatronResult{}, false
	}
	topo := c.Topo
	h := float64(c.Model.HiddenDim)
	layersPerStage := float64(c.Model.Layers) / float64(s.PP)

	// Weights and gradients are sharded by TP·PP; CP ranks replicate the
	// weights like DP ranks do, so the distributed optimizer shards
	// optimizer states across DP·CP as well.
	dp := s.DP(n)
	states := (4*c.Model.Params)/float64(s.TP*s.PP) +
		(12*c.Model.Params)/float64(s.TP*s.PP*s.CP*dp) +
		0.8*float64(1<<30)
	budget := float64(topo.UsableMemory()) - states
	if budget <= 0 {
		return MegatronResult{}, false
	}
	// Activation bytes per token per device: sharded by TP·CP, each device
	// holding its stage's layers (pipelining keeps ~PP micro-batches in
	// flight, cancelling the 1/PP layer saving in steady state).
	perToken := c.MTokenBytes / float64(s.TP*s.CP)
	capTokens := int(budget / perToken)
	if capTokens < maxCtx {
		return MegatronResult{}, false
	}

	packs := packing.BestFitDecreasing(batch, capTokens)
	rounds := (len(packs) + dp - 1) / dp
	packsPerReplica := rounds // sequential micro-batches each replica sees

	var totalTime, totalComm float64
	for r := 0; r < rounds; r++ {
		var slowest, slowestComm float64
		for i := r * dp; i < (r+1)*dp && i < len(packs); i++ {
			p := packs[i]
			// Compute sharded over the full replica span.
			comp := c.ComputeTime(p.Lens, span)
			// TP collectives: 4 all-reduces of the s×h activations per
			// local layer within the TP group.
			var tpComm float64
			if s.TP > 1 {
				bytes := float64(p.Total) / float64(s.CP) * h * 2
				tpComm = 4 * layersPerStage * topo.AllGatherTime(2*bytes, s.TP)
			}
			// CP ring: K,V circulate; overlapped with attention chunk by
			// chunk, only the excess is exposed. TP is innermost, so the
			// ring crosses nodes whenever the replica exceeds a node.
			var cpExposed float64
			if s.CP > 1 {
				ringBW := topo.IntraBW
				if s.TP*s.CP > topo.DevicesPerNode {
					ringBW = topo.InterBWPerDevice()
				}
				var attn, ring float64
				for _, sl := range p.Lens {
					fs := float64(sl)
					attn += c.Alpha1 * fs * fs / float64(span)
					hop := 2 * (fs / float64(s.CP)) * h * 2 / float64(s.TP)
					ring += float64(s.CP-1) * hop / ringBW * layersPerStage
				}
				if ring > attn {
					cpExposed = ring - attn
				}
			}
			// PP point-to-point: boundary activations forward + gradients
			// backward per stage boundary.
			var ppComm float64
			if s.PP > 1 {
				bytes := float64(p.Total) / float64(s.TP*s.CP) * h * 2
				ppComm = 2 * float64(s.PP-1) * bytes / topo.InterBWPerDevice()
			}
			t := comp + tpComm + cpExposed + ppComm
			if t > slowest {
				slowest = t
				slowestComm = tpComm + cpExposed + ppComm
			}
		}
		totalTime += slowest + c.Beta1
		totalComm += slowestComm
	}
	// Pipeline bubble: with m micro-batches in flight per replica, the
	// schedule stretches by (m + PP − 1)/m (GPipe/1F1B bubble).
	if s.PP > 1 && packsPerReplica > 0 {
		bubble := float64(packsPerReplica+s.PP-1) / float64(packsPerReplica)
		totalTime *= bubble
	}
	totalTime += c.ZeROTime()
	return MegatronResult{Strategy: s, Time: totalTime, Comm: totalComm, Rounds: rounds}, true
}
