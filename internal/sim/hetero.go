package sim

import (
	"fmt"
	"math"
	"math/rand"

	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/planner"
)

// ExecuteIterationHetero replays an iteration's micro-batch plans on a
// heterogeneous fleet: each group is costed against the device classes of
// the range it actually occupies (costmodel.GroupCoeffs), so a group landing
// on the H100 half runs faster and a group squeezed onto 40-GB nodes hits
// its smaller memory budget. Plans whose groups carry explicit ranges (the
// placement-aware planner's output) execute exactly where they were planned;
// fully unplaced plans (legacy planners, baselines) are placed
// lowest-address-first — the class-oblivious behavior the heterogeneous
// experiment quantifies.
func ExecuteIterationHetero(h costmodel.HeteroCoeffs, plans []planner.MicroPlan, opts Options) (IterResult, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	jitter := func() float64 {
		if opts.Noise <= 0 {
			return 1
		}
		return math.Exp(rng.NormFloat64() * opts.Noise)
	}

	n := h.Mixed.NumDevices()
	// Per-range coefficients and the exposed ZeRO term are loop-invariant;
	// profile each range once per iteration, not once per group occurrence.
	ec := h.Evaluator()
	var zeroTime float64
	if opts.IncludeZeRO {
		// ZeRO-3 gathers span the whole fleet, so the exposed time is
		// bounded by the slowest class's NIC share: the bottleneck view.
		zeroTime = h.Bottleneck().ZeROTime()
	}
	var res IterResult
	for _, mp := range plans {
		var mr MicroResult

		groups, ranges, err := placedRanges(n, mp)
		if err != nil {
			return res, err
		}
		if opts.Pool != nil {
			for _, r := range ranges {
				mr.GroupCreation += opts.Pool.Acquire(r)
			}
		}

		var slowest float64
		var slowestComm, slowestComp float64
		for gi, g := range groups {
			e := ec.Group(ranges[gi])
			comp := e.ComputeTime(g.Lens, g.Degree) * jitter()
			comm := e.CommTime(g.Lens, g.Degree) * jitter()
			mem := e.MemoryBytes(g.Lens, g.Degree)
			gr := GroupResult{
				Degree:  g.Degree,
				Seqs:    len(g.Lens),
				Tokens:  g.Tokens(),
				Comp:    comp,
				Comm:    comm,
				Total:   comp + comm,
				MemFrac: mem / float64(e.Topo.UsableMemory()),
				Range:   ranges[gi],
			}
			mr.Groups = append(mr.Groups, gr)
			if gr.MemFrac > res.PeakMemFrac {
				res.PeakMemFrac = gr.MemFrac
			}
			if gr.MemFrac > 1 {
				res.OOM = true
			}
			if gr.Total > slowest {
				slowest = gr.Total
				slowestComm = gr.Comm
				slowestComp = gr.Comp
			}
		}
		mr.ZeRO = zeroTime
		mr.Time = slowest + mr.ZeRO + mr.GroupCreation
		mr.CriticalComm = slowestComm
		res.Micro = append(res.Micro, mr)
		res.Time += mr.Time
		res.AllToAll += slowestComm
		res.Comp += slowestComp
		res.ZeRO += mr.ZeRO
		res.GroupCreation += mr.GroupCreation
	}
	if res.OOM {
		return res, ErrOOM
	}
	return res, nil
}

// placedRanges resolves one micro-plan's device ranges: planner-placed plans
// use (and validate) their own ranges; unplaced plans get lowest-address
// buddy placement. Mixing placed and unplaced groups in one plan is a caller
// bug.
func placedRanges(n int, mp planner.MicroPlan) ([]planner.Group, []cluster.DeviceRange, error) {
	var groups []planner.Group
	placed, unplaced := 0, 0
	for _, g := range mp.Groups {
		if len(g.Lens) == 0 {
			continue
		}
		groups = append(groups, g)
		if g.Placed() {
			placed++
		} else {
			unplaced++
		}
	}
	switch {
	case placed > 0 && unplaced > 0:
		return nil, nil, fmt.Errorf("sim: plan mixes placed and unplaced groups")
	case placed > 0:
		var pl cluster.GroupPlacement
		ranges := make([]cluster.DeviceRange, len(groups))
		for i, g := range groups {
			if g.Range.Size != g.Degree {
				return nil, nil, fmt.Errorf("sim: group %v range %v does not match its degree", g, g.Range)
			}
			ranges[i] = g.Range
			pl.Ranges = append(pl.Ranges, g.Range)
		}
		if err := pl.Validate(n); err != nil {
			return nil, nil, fmt.Errorf("sim: invalid placement: %w", err)
		}
		return groups, ranges, nil
	default:
		degrees := make([]int, len(groups))
		for i, g := range groups {
			degrees[i] = g.Degree
		}
		pl, err := cluster.PlaceGroups(n, degrees)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: placement failed: %w", err)
		}
		return groups, pl.Ranges, nil
	}
}
