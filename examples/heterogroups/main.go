// Heterogroups reproduces the paper's Fig. 1 motivating example end to end:
// five sequences (one 100K, four 48K) on 64 GPUs, comparing the two
// homogeneous SP=32 packings against heterogeneous SP groups, and showing
// that the FlexSP planner discovers the paper's ⟨32, 8×4⟩ layout by itself.
package main

import (
	"fmt"

	"flexsp/internal/experiments"
)

func main() {
	cfg := experiments.Default()
	res := experiments.Fig1(cfg)
	fmt.Print(res.Render())
	fmt.Println()
	fmt.Println("The heterogeneous layout keeps the 100K sequence on a 32-wide group")
	fmt.Println("(it does not fit fewer devices) while the 48K sequences run on")
	fmt.Println("single-node SP=8 groups whose All-to-All stays on NVLink — the")
	fmt.Println("communication drops by an order of magnitude and the short sequences")
	fmt.Println("no longer wait for inter-node bandwidth (paper §1, Fig. 1).")
}
