// Packedattention demonstrates, numerically, the two correctness properties
// FlexSP's flexibility rests on (paper §2.2.2 and §2.1.2):
//
//  1. packing varied-length sequences with a block-diagonal causal mask is
//     bit-for-bit equivalent to processing each sequence alone, while a
//     plain causal mask cross-contaminates; and
//  2. Ulysses-style sequence-parallel attention produces identical outputs
//     at every SP degree, so the solver can move sequences between groups of
//     different sizes without changing model semantics.
//
// The demo runs a tiny float64 attention layer on an in-process collective
// runtime (goroutines standing in for GPUs).
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"flexsp/internal/comm"
	"flexsp/internal/model"
	"flexsp/internal/packing"
	"flexsp/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	const dim, heads = 16, 4

	// Pack three varied-length sequences into one input.
	packs := packing.BestFitDecreasing([]int{10, 6, 16}, 32)
	pack := packs[0]
	offsets := pack.Offsets()
	fmt.Printf("packed %v into %d tokens, boundaries %v\n", pack.Lens, pack.Total, offsets)

	q := tensor.Random(rng, pack.Total, dim)
	k := tensor.Random(rng, pack.Total, dim)
	v := tensor.Random(rng, pack.Total, dim)

	// Ground truth: each sequence attended alone.
	truth := model.AttentionPerSequence(q, k, v, heads, offsets)

	// (1) Packed attention with the adjusted mask is exact; the naive mask
	// is not.
	masked := model.Attention(q, k, v, heads, model.PackedCausalMask(offsets))
	naive := model.Attention(q, k, v, heads, model.CausalMask())
	fmt.Printf("packed w/ block-diagonal mask: max|Δ| = %.2e (exact)\n",
		tensor.MaxAbsDiff(truth, masked))
	fmt.Printf("packed w/ plain causal mask:   max|Δ| = %.2e (contaminated!)\n",
		tensor.MaxAbsDiff(truth, naive))

	// (2) Ulysses SP attention matches at every degree. SP=3 does not divide
	// the 32-token pack: UlyssesAttention reports that as an error instead
	// of planning a broken reshard.
	for _, p := range []int{1, 2, 4} {
		out, err := runUlysses(p, q, k, v, heads, model.PackedCausalMask(offsets))
		if err != nil {
			panic(err)
		}
		fmt.Printf("Ulysses SP=%d:                  max|Δ| = %.2e\n",
			p, tensor.MaxAbsDiff(truth, out))
	}
	if _, err := runUlysses(3, q, k, v, heads, model.PackedCausalMask(offsets)); err != nil {
		fmt.Printf("Ulysses SP=3 rejected:         %v\n", err)
	}
	fmt.Println("\nheterogeneous SP groups are numerically interchangeable — FlexSP can")
	fmt.Println("route any sequence to any group size without affecting training.")
}

// runUlysses shards the sequence over p goroutine "devices" and reassembles
// the output.
func runUlysses(p int, q, k, v *tensor.Matrix, heads int, mask tensor.MaskFunc) (*tensor.Matrix, error) {
	world := comm.NewWorld(p)
	c := world.Group(0, p)
	seq := q.Rows
	local := seq / p
	outs := make([]*tensor.Matrix, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			lo, hi := rank*local, (rank+1)*local
			outs[rank], errs[rank] = model.UlyssesAttention(c, rank,
				q.SliceRows(lo, hi), k.SliceRows(lo, hi), v.SliceRows(lo, hi),
				heads, seq, mask)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tensor.ConcatRows(outs...), nil
}
