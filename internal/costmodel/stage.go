package costmodel

import "flexsp/internal/cluster"

// StageProfile derives the α-β coefficients for one pipeline stage: a
// contiguous slice of stageLayers of the model's totalLayers layers, running
// on its own sub-cluster (see cluster.Topology.Carve). The returned Coeffs
// describe the stage exactly like Profile describes the whole model, so every
// downstream consumer — the FlexSP planner, the solver, the executor — works
// unchanged within a stage:
//
//   - compute and all-to-all coefficients scale with the stage's layer share;
//   - model states are the stage's parameter share, ZeRO-3 sharded over the
//     stage's devices (which leaves the per-device state bytes equal to the
//     flat profile's — sharding over fewer devices exactly cancels the
//     smaller stage);
//   - activation memory per token is the stage's layer share, multiplied by
//     inFlight, the number of micro-batches the 1F1B schedule keeps resident
//     on this stage (min(p−s, m) for stage s of p). The recompute workspace
//     is transient — only one micro-batch computes at a time — so it is
//     charged once, not per in-flight micro-batch.
//
// StageProfile(m, topo, L, L, 1) equals Profile(m, topo): a one-stage
// pipeline is the flat system.
func StageProfile(m ModelConfig, stageTopo cluster.Topology, stageLayers, totalLayers, inFlight int) Coeffs {
	if stageLayers <= 0 || totalLayers <= 0 || stageLayers > totalLayers {
		panic("costmodel: invalid stage layer split")
	}
	if inFlight < 1 {
		inFlight = 1
	}
	h := float64(m.HiddenDim)
	l := float64(stageLayers)
	frac := l / float64(totalLayers)
	rf := recomputeFactor(m.Recompute)

	// Attention FLOPs per sequence: 2·s²·h per layer forward (causal flash
	// attention), ×3 for backward, ×recompute.
	attnFLOPsPerS2 := 2 * h * l * fwdBwdFactor * rf
	// Linear FLOPs per token: 24·h² per layer forward (QKVO + 4h MLP), ×3.
	linFLOPsPerTok := 24 * h * h * l * fwdBwdFactor * rf

	n := float64(stageTopo.NumDevices())
	stage := m
	stage.Layers = stageLayers
	stage.Params = m.Params * frac
	states := bytesPerParamState*stage.Params/n + stateWorkingOverheadBytes

	return Coeffs{
		Model:                 stage,
		Topo:                  stageTopo,
		Alpha1:                attnFLOPsPerS2 / stageTopo.EffFLOPS,
		Alpha2:                linFLOPsPerTok / stageTopo.EffFLOPS,
		Beta1:                 kernelLaunchBeta,
		AllToAllBytesPerToken: ulyssesAllToAllsPerLayer * l * h * bytesPerElem,
		Beta2:                 commLaunchBeta,
		MTokenBytes:           stageActBytesPerToken(m.Recompute, l, h, inFlight),
		MStateBytes:           states,
	}
}

// stageActBytesPerToken returns activation bytes per token for a pipeline
// stage holding inFlight micro-batches. With no recomputation a transformer
// layer keeps roughly 40 bytes/token/hidden of fp16 activations
// (flash-attention resident set); checkpointing MLP blocks drops that to
// ~24; full checkpointing stores only the fp16 layer inputs
// (2 bytes/token/hidden per layer) plus one layer's recompute workspace.
// Stored activations (or checkpoints) multiply by the in-flight count; the
// transient workspace does not — only one micro-batch computes at a time.
func stageActBytesPerToken(r RecomputePolicy, layers, hidden float64, inFlight int) float64 {
	fl := float64(inFlight)
	switch r {
	case RecomputeMLP:
		return fl * 24 * layers * hidden
	case RecomputeFull:
		return fl*2*layers*hidden + 40*hidden
	default:
		return fl * 40 * layers * hidden
	}
}
