// Command flexsp-train runs a multi-iteration simulated training loop with
// the disaggregated solver service of paper §5: batch lengths are submitted
// ahead of time, per-node solver workers plan them concurrently, and the
// executor consumes plans in order while printing per-iteration stats.
//
//	flexsp-train -dataset commoncrawl -iters 10 -maxctx 192K -system flexsp
//
// With -system pipeline the joint PP×SP planner runs per iteration: -pp 0
// sweeps PP ∈ {1,2,4,8}, -pp N pins the pipeline degree.
//
// With -cluster mixed:32xA100,32xH100 the run targets a heterogeneous fleet:
// the flexsp and pipeline systems plan placement-aware (groups and stages
// know their device classes), while deepspeed/batchada plan against the
// conservative bottleneck view; every system executes on the real mixed
// fleet. -cluster overrides -devices.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"flexsp/internal/baselines"
	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/pipeline"
	"flexsp/internal/planner"
	"flexsp/internal/report"
	"flexsp/internal/sim"
	"flexsp/internal/solver"
	"flexsp/internal/trace"
	"flexsp/internal/workload"
)

func main() {
	devices := flag.Int("devices", 64, "GPU count")
	clusterSpec := flag.String("cluster", "", "fleet spec, e.g. mixed:32xA100,32xH100 (overrides -devices)")
	modelName := flag.String("model", "GPT-7B", "model: GPT-7B, GPT-13B, GPT-30B")
	datasetName := flag.String("dataset", "commoncrawl", "dataset: github, commoncrawl, wikipedia")
	dataFile := flag.String("data", "", "load sequence lengths from a file (JSON array or one per line) instead of a synthetic dataset")
	iters := flag.Int("iters", 5, "training iterations")
	batch := flag.Int("batch", 512, "global batch size (sequences)")
	maxCtxStr := flag.String("maxctx", "192K", "maximum context length (e.g. 192K)")
	system := flag.String("system", "flexsp", "system: flexsp, deepspeed, batchada, pipeline")
	pp := flag.Int("pp", 0, "pipeline degree for -system pipeline (0 = sweep 1,2,4,8)")
	workers := flag.Int("workers", 4, "solver service workers")
	seed := flag.Int64("seed", 42, "sampling seed")
	tracePath := flag.String("trace", "", "write per-iteration JSONL telemetry to this file")
	warmup := flag.Int("warmup", 0, "iterations excluded from the summary")
	flag.Parse()

	maxCtx, err := parseTokens(*maxCtxStr)
	if err != nil {
		fatal(err)
	}
	model := costmodel.GPT7B
	for _, m := range costmodel.Models() {
		if strings.EqualFold(m.Name, *modelName) {
			model = m
		}
	}
	var dataset workload.Dataset
	switch strings.ToLower(*datasetName) {
	case "github":
		dataset = workload.GitHub()
	case "wikipedia":
		dataset = workload.Wikipedia()
	default:
		dataset = workload.CommonCrawl()
	}

	var topo cluster.Topology
	var hetero *costmodel.HeteroCoeffs
	fleet := ""
	if *clusterSpec != "" {
		mixed, err := cluster.ParseClusterSpec(*clusterSpec)
		if err != nil {
			fatal(fmt.Errorf("invalid -cluster: %w", err))
		}
		fleet = mixed.String()
		if uni, ok := mixed.Uniform(); ok {
			topo = uni // single class: the scalar path applies unchanged
		} else {
			h := costmodel.ProfileMixed(model, mixed)
			if err := h.Validate(); err != nil {
				fatal(err)
			}
			hetero = &h
			topo = h.Bottleneck().Topo
		}
	} else {
		t, err := cluster.NewA100Cluster(*devices)
		if err != nil {
			fatal(fmt.Errorf("invalid -devices: %w", err))
		}
		topo = t
		fleet = fmt.Sprintf("%d GPUs", topo.NumDevices())
	}
	n := topo.NumDevices()
	if *pp < 0 || (*pp > 0 && *pp > model.Layers) {
		fatal(fmt.Errorf("invalid -pp %d: must be positive and not exceed %d layers", *pp, model.Layers))
	}
	if *pp > 0 {
		// Carve enforces the full stage-divisibility rules (device count and
		// node boundaries), so bad degrees fail here with the real reason
		// instead of an opaque unsolvable error later.
		if _, err := topo.Carve(*pp); err != nil {
			fatal(fmt.Errorf("invalid -pp %d: %w", *pp, err))
		}
	}
	var coeffs costmodel.Coeffs
	if hetero != nil {
		coeffs = hetero.Bottleneck()
	} else {
		coeffs = costmodel.Profile(model, topo)
	}
	pool := cluster.NewGroupPool(n, cluster.DefaultGroupCreation)
	// One-time startup: create the communicator hierarchy so hot switching
	// is free during measured iterations (§5).
	var warmupCost float64
	for size := 2; size <= n; size *= 2 {
		for start := 0; start+size <= n; start += size {
			warmupCost += pool.Acquire(cluster.DeviceRange{Start: start, Size: size})
		}
	}
	fmt.Printf("communicator warm-up: %.0fs simulated, one-time\n", warmupCost)
	rng := rand.New(rand.NewSource(*seed))

	fmt.Printf("%s on %s, %s, max ctx %s, batch %d, system %s\n\n",
		model.Name, dataset.Name, fleet, report.Tokens(maxCtx), *batch, *system)

	// Draw all batches up front (lengths are known from the data loader)
	// and prefetch plans through the service.
	batches := make([][]int, *iters)
	if *dataFile != "" {
		lens, err := workload.LoadLengthsFile(*dataFile)
		if err != nil {
			fatal(err)
		}
		fd := workload.FileDataset{Name: *dataFile, Lens: lens}
		for i := range batches {
			b, err := fd.Batch(rng, *batch, maxCtx)
			if err != nil {
				fatal(err)
			}
			batches[i] = b
		}
	} else {
		for i := range batches {
			batches[i] = dataset.Batch(rng, *batch, maxCtx)
		}
	}

	t := report.NewTable("", "iter", "micro", "groups (first micro-batch)",
		"est", "exec", "a2a share", "solve")
	var traceW io.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traceW = f
	}
	rec := trace.NewRecorder(traceW)
	var totalExec, totalSolve float64

	// record emits one iteration's table row and telemetry and accumulates
	// the summary totals, shared by the flat and pipelined paths.
	record := func(i, micro int, label string, groups []int, tokens, seqs int,
		est, execSeconds, a2aSeconds, a2aShare, peakMem, solveSeconds float64) error {
		t.Add(strconv.Itoa(i), strconv.Itoa(micro), label,
			report.Secs(est), report.Secs(execSeconds),
			report.Pct(a2aShare), report.Secs(solveSeconds))
		if err := rec.Record(trace.Iteration{
			Iter: i, Tokens: tokens, Seqs: seqs, MicroBatches: micro,
			Groups: groups, EstSeconds: est, ExecSeconds: execSeconds,
			AllToAllSeconds: a2aSeconds, SolveSeconds: solveSeconds,
			PeakMemFrac: peakMem,
		}); err != nil {
			return err
		}
		totalExec += execSeconds
		totalSolve += solveSeconds
		return nil
	}

	execPlans := func(i int, plans []planner.MicroPlan, est float64, solveWall time.Duration) error {
		opts := sim.Options{IncludeZeRO: true, Pool: pool, Seed: int64(i)}
		var exec sim.IterResult
		var err error
		if hetero != nil {
			exec, err = sim.ExecuteIterationHetero(*hetero, plans, opts)
		} else {
			exec, err = sim.ExecuteIteration(coeffs, plans, opts)
		}
		if err != nil {
			return err
		}
		first := "⟨⟩"
		var groups []int
		if len(plans) > 0 {
			groups = plans[0].Degrees()
			first = degreesString(groups)
		}
		tokens, seqs := 0, 0
		for _, p := range plans {
			for _, g := range p.Groups {
				seqs += len(g.Lens)
				tokens += g.Tokens()
			}
		}
		return record(i, len(plans), first, groups, tokens, seqs,
			est, exec.Time, exec.AllToAll, exec.AllToAllShare(), exec.PeakMemFrac,
			solveWall.Seconds())
	}

	switch strings.ToLower(*system) {
	case "deepspeed":
		for i, b := range batches {
			start := time.Now()
			plans, err := baselines.DeepSpeed(coeffs, b, maxCtx)
			if err != nil {
				fatal(err)
			}
			if err := execPlans(i, plans, planTime(plans), time.Since(start)); err != nil {
				fatal(err)
			}
		}
	case "batchada":
		for i, b := range batches {
			start := time.Now()
			plans, err := baselines.BatchAda(coeffs, b)
			if err != nil {
				fatal(err)
			}
			if err := execPlans(i, plans, planTime(plans), time.Since(start)); err != nil {
				fatal(err)
			}
		}
	case "pipeline":
		var jp *pipeline.Planner
		if hetero != nil {
			jp = pipeline.NewHeteroPlanner(*hetero)
		} else {
			jp = pipeline.NewPlanner(coeffs)
		}
		jp.IncludeZeRO = true
		if *pp > 0 {
			jp.Degrees = []int{*pp}
		}
		for i, b := range batches {
			res, err := jp.Solve(b)
			if err != nil {
				fatal(err)
			}
			exec, err := res.Pipe.Execute(res.Plans, pipeline.Options{
				IncludeZeRO: true, Pool: pool, Seed: int64(i)})
			if err != nil {
				fatal(err)
			}
			first := "⟨⟩"
			var groups []int
			if len(res.Plans) > 0 {
				groups = res.Plans[0][0].Degrees()
				first = fmt.Sprintf("PP=%d %s (bubble %.0f%%)",
					res.Pipe.PP, degreesString(groups), 100*exec.BubbleFrac)
			}
			tokens, seqs := 0, 0
			for _, stages := range res.Plans {
				for _, g := range stages[0].Groups {
					seqs += len(g.Lens)
					tokens += g.Tokens()
				}
			}
			if err := record(i, len(res.Plans), first, groups, tokens, seqs,
				res.Time, exec.Time, exec.AllToAll, exec.AllToAllShare(),
				exec.PeakMemFrac, res.SolveWall.Seconds()); err != nil {
				fatal(err)
			}
		}
	default: // flexsp with the disaggregated service
		var pl *planner.Planner
		if hetero != nil {
			pl = planner.NewHetero(*hetero)
		} else {
			pl = planner.New(coeffs)
		}
		inner := solver.New(pl)
		inner.Overhead = coeffs.ZeROTime() // account for per-micro-batch ZeRO
		sv := solver.NewService(inner, *workers)
		defer sv.Close()
		for _, b := range batches {
			sv.Submit(b)
		}
		for i := 0; i < *iters; i++ {
			res, err := sv.Next()
			if err != nil {
				fatal(err)
			}
			if err := execPlans(i, res.Plans, res.Time, res.SolveWall); err != nil {
				fatal(err)
			}
		}
	}

	fmt.Println(t.String())
	fmt.Printf("mean iteration: %s   mean solve: %s (overlapped by prefetching)\n",
		report.Secs(totalExec/float64(*iters)), report.Secs(totalSolve/float64(*iters)))
	if sum, err := rec.Summarize(*warmup); err == nil {
		fmt.Printf("summary (after %d warm-up): %.2fs/iter, %.1f%% all-to-all, %.0f tokens/s, est. error %.1f%%, solve p95 %.2fs\n",
			sum.Warmup, sum.MeanExecSeconds, 100*sum.AllToAllShare,
			sum.TokensPerSec, 100*sum.EstimateError, sum.SolveP95)
	}
}

func planTime(plans []planner.MicroPlan) float64 {
	var t float64
	for _, p := range plans {
		t += p.Time
	}
	return t
}

func degreesString(degrees []int) string {
	var parts []string
	i := 0
	for i < len(degrees) {
		j := i
		for j < len(degrees) && degrees[j] == degrees[i] {
			j++
		}
		if j-i > 1 {
			parts = append(parts, fmt.Sprintf("%d×%d", degrees[i], j-i))
		} else {
			parts = append(parts, strconv.Itoa(degrees[i]))
		}
		i = j
	}
	return "⟨" + strings.Join(parts, ",") + "⟩"
}

func parseTokens(s string) (int, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad token count %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexsp-train:", err)
	os.Exit(1)
}
