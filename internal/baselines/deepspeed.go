// Package baselines reimplements the comparison systems of the paper's
// evaluation (§6.1) at the cost-model level:
//
//   - DeepSpeed: ZeRO-3 plus homogeneous Ulysses-style SP with one static
//     degree for the whole training run, chosen as the smallest degree that
//     fits the maximum context length; inputs are Best-fit packed to the
//     replica token capacity.
//   - Megatron-LM: TP (with Megatron-style SP) + CP + DP (ZeRO-1); the
//     (TP, CP) grid is swept and the best feasible strategy wins, emulating
//     the paper's hand-tuning protocol.
//   - FlexSP-BatchAda: like DeepSpeed but the (single) SP degree is re-chosen
//     adaptively per data batch.
//
// All baselines emit the same iteration-plan shape the executor consumes, so
// every system is costed identically.
package baselines

import (
	"fmt"

	"flexsp/internal/costmodel"
	"flexsp/internal/packing"
	"flexsp/internal/planner"
)

// ErrInfeasible is returned when a baseline cannot fit the workload.
var ErrInfeasible = fmt.Errorf("baselines: workload does not fit")

// DeepSpeed builds the iteration plan of the DeepSpeed baseline: the SP
// degree is fixed for the whole run by the maximum context length (not the
// batch!), sequences are Best-fit packed to the replica capacity, and packs
// execute round-robin over the N/degree identical replicas.
func DeepSpeed(c costmodel.Coeffs, batch []int, maxCtx int) ([]planner.MicroPlan, error) {
	degree := c.MinDegreeFor(maxCtx)
	if degree == 0 {
		return nil, ErrInfeasible
	}
	return homogeneousPlan(c, batch, degree)
}

// StaticDegree exposes the degree DeepSpeed locks in for a context length.
func StaticDegree(c costmodel.Coeffs, maxCtx int) int { return c.MinDegreeFor(maxCtx) }

// BatchAda builds the FlexSP-BatchAda plan: the best single SP degree for
// this particular batch (adaptive across batches, homogeneous within).
func BatchAda(c costmodel.Coeffs, batch []int) ([]planner.MicroPlan, error) {
	maxLen := 0
	for _, l := range batch {
		if l > maxLen {
			maxLen = l
		}
	}
	minDeg := c.MinDegreeFor(maxLen)
	if minDeg == 0 {
		return nil, ErrInfeasible
	}
	var best []planner.MicroPlan
	bestTime := 0.0
	for d := minDeg; d <= c.Topo.NumDevices(); d *= 2 {
		plans, err := homogeneousPlan(c, batch, d)
		if err != nil {
			continue
		}
		t := planTime(plans)
		if best == nil || t < bestTime {
			best, bestTime = plans, t
		}
	}
	if best == nil {
		return nil, ErrInfeasible
	}
	return best, nil
}

// Homogeneous builds the iteration plan of a homogeneous SP system with an
// explicitly chosen degree (the layout Table 1 measures across degrees).
func Homogeneous(c costmodel.Coeffs, batch []int, degree int) ([]planner.MicroPlan, error) {
	return homogeneousPlan(c, batch, degree)
}

// homogeneousPlan packs the batch with Best-Fit-Decreasing and schedules the
// packs over the N/degree replicas. The pack size targets the per-replica
// fair share of the batch's tokens (so all replicas stay busy), bounded by
// the replica memory capacity; oversized single sequences get their own
// pack. Each round of gradient accumulation is one MicroPlan whose groups
// all share the degree.
func homogeneousPlan(c costmodel.Coeffs, batch []int, degree int) ([]planner.MicroPlan, error) {
	n := c.Topo.NumDevices()
	if degree <= 0 || degree > n {
		return nil, ErrInfeasible
	}
	capacity := c.MaxTokensPerGroup(degree)
	if capacity <= 0 {
		return nil, ErrInfeasible
	}
	for _, l := range batch {
		if l > capacity {
			return nil, ErrInfeasible // would be truncated in practice; reject here
		}
	}
	replicas := n / degree
	total := 0
	for _, l := range batch {
		total += l
	}
	target := (total + replicas - 1) / replicas
	if target > capacity {
		target = capacity
	}
	if target <= 0 {
		target = capacity
	}
	packs := packing.BestFitDecreasingFlex(batch, target, capacity)
	// Rounds of gradient accumulation: ceil(#packs / replicas); balance
	// pack-to-replica assignment by descending pack cost (LPT) within the
	// fixed round structure the homogeneous systems use.
	rounds := (len(packs) + replicas - 1) / replicas
	plans := make([]planner.MicroPlan, rounds)
	for i, p := range packs {
		r := i / replicas
		plans[r].Groups = append(plans[r].Groups, planner.Group{Degree: degree, Lens: p.Lens})
	}
	for r := range plans {
		var maxT float64
		for _, g := range plans[r].Groups {
			if t := g.Time(c); t > maxT {
				maxT = t
			}
		}
		plans[r].Time = maxT
	}
	return plans, nil
}

func planTime(plans []planner.MicroPlan) float64 {
	var t float64
	for _, p := range plans {
		t += p.Time
	}
	return t
}
