// Command flexsp-serve runs the FlexSP planner as a long-lived HTTP/JSON
// daemon — the disaggregated solver service of paper §5 as a standalone,
// multi-tenant component. Training jobs POST batch signatures and receive
// placed plans; concurrent identical requests coalesce into one solver pass
// and repeated signatures hit the shared plan cache.
//
//	flexsp-serve -addr :8080 -devices 64 -model GPT-7B
//
// Endpoints (versioned wire protocol):
//
//	POST /v2/plan             {"strategy","lengths","maxCtx","tenant"} →
//	                          tagged plan envelope; strategies: flexsp,
//	                          pipeline, deepspeed, batchada, megatron
//	POST /v2/stream/open      open a streaming session: sequences arrive
//	                          incrementally, speculative solves run behind
//	                          them (see -stream-limit, -stream-timeout)
//	POST /v2/stream/{id}/append  add lengths to a session
//	POST /v2/stream/{id}/close   seal the batch → plan envelope + stream stats
//	POST /v2/topology         apply live-topology events (node loss,
//	                          stragglers, rejoin); the daemon replans in the
//	                          background, warm-started from the last solve
//	GET  /v2/topology         live fleet summary: versions, degraded flag
//	POST /v1/solve            v1 shim (flexsp strategy, flat body)
//	POST /v1/solve/pipelined  v1 shim (pipeline strategy)
//	GET  /v1/metrics          cache/dedup counters, queue depth, p50/p99
//	GET  /metrics             the same counters as Prometheus text
//	GET  /v2/trace            recent request trace IDs
//	GET  /v2/trace/{id}       one request's Chrome-trace JSON
//	GET  /healthz             liveness (503 while draining)
//
// Admission control answers overflow with 429: -queue bounds admitted
// requests, -tenant-limit bounds each tenant label. -batch-window sets how
// long the first request for a signature waits for identical requests to
// coalesce with. On SIGTERM/SIGINT the daemon drains gracefully: /healthz
// flips to 503, new plan requests are refused, and in-flight solves finish
// (up to -drain-timeout) before exit.
//
// Elastic planning is on by default (-elastic=false pins the boot fleet):
// topology events posted to /v2/topology trigger a debounced background
// replan (-replan-debounce), and plans served before it lands carry
// "degraded": true.
//
// Observability: -log-level selects the structured-log threshold (requests
// log at debug with their request IDs), -trace-ring sizes the /v2/trace
// ring, and -pprof-addr serves net/http/pprof on a separate listener kept
// off the public planning port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexsp"
	"flexsp/internal/cliutil"
	"flexsp/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	devices := flag.Int("devices", 64, "GPU count (multiple of 8, or < 8 for one node)")
	clusterSpec := flag.String("cluster", "", "fleet spec, e.g. mixed:32xA100,32xH100 (overrides -devices)")
	modelName := flag.String("model", "GPT-7B", "model: GPT-7B, GPT-13B, GPT-30B")
	plannerName := flag.String("planner", "enum", "per-micro-batch planning algorithm: enum, milp, greedy")
	trials := flag.Int("trials", 0, "Alg. 1 micro-batch-count trials (0 = default)")
	queue := flag.Int("queue", 64, "max admitted requests before 429")
	tenantLimit := flag.Int("tenant-limit", 16, "max concurrent requests per tenant before 429")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "coalescing window for identical requests (negative disables)")
	cacheEntries := flag.Int("cache", 4096, "plan cache entries")
	cacheGranularity := flag.Int("granularity", 256, "plan cache rounding granularity, tokens")
	streamLimit := flag.Int("stream-limit", 64, "max concurrently open streaming sessions before 429")
	streamTimeout := flag.Duration("stream-timeout", time.Minute, "reap streaming sessions idle this long (negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
	logLevel := flag.String("log-level", "info", "structured-log threshold: debug, info, warn, error")
	traceRing := flag.Int("trace-ring", 64, "completed request traces kept for GET /v2/trace/{id} (negative disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	elastic := flag.Bool("elastic", true, "accept live-topology events on POST /v2/topology and replan in the background")
	replanDebounce := flag.Duration("replan-debounce", 100*time.Millisecond, "wait this long after a topology event for the burst to settle before replanning (negative replans immediately)")
	calibration := flag.String("calibration", "", "load fitted cost-model coefficients from this calibration file (see flexsp-profile fit)")
	flag.Parse()

	// Limits where zero can only be a typo fail fast with a clear error
	// instead of booting a daemon that refuses every request (a
	// zero-session stream limit) or never reaps abandoned sessions (a zero
	// stream timeout). Negative keeps its documented meaning: disabled.
	if *streamLimit <= 0 {
		fmt.Fprintf(os.Stderr, "flexsp-serve: invalid -stream-limit %d: must be positive\n", *streamLimit)
		return 2
	}
	if *streamTimeout == 0 {
		fmt.Fprintln(os.Stderr, "flexsp-serve: invalid -stream-timeout 0: must be positive (or negative to disable the idle reaper)")
		return 2
	}
	if *traceRing == 0 {
		fmt.Fprintln(os.Stderr, "flexsp-serve: invalid -trace-ring 0: must be positive (or negative to disable tracing)")
		return 2
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "flexsp-serve: invalid -log-level:", err)
		return 2
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	plAlgo, err := cliutil.ParsePlanner(*plannerName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsp-serve: invalid -planner:", err)
		return 2
	}
	model, err := cliutil.ModelByName(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsp-serve: invalid -model:", err)
		return 2
	}
	if err := cliutil.ValidateFleet(*devices, *clusterSpec); err != nil {
		fmt.Fprintln(os.Stderr, "flexsp-serve:", err)
		return 2
	}

	sys, err := flexsp.NewSystem(flexsp.Config{
		Devices:     *devices,
		Cluster:     *clusterSpec,
		Model:       model,
		Planner:     plAlgo,
		Trials:      *trials,
		Calibration: *calibration,
		Serve: flexsp.ServeConfig{
			QueueLimit:       *queue,
			TenantLimit:      *tenantLimit,
			BatchWindow:      *batchWindow,
			CacheEntries:     *cacheEntries,
			CacheGranularity: *cacheGranularity,
			TraceEntries:     *traceRing,
			StreamLimit:      *streamLimit,
			StreamTimeout:    *streamTimeout,
			Elastic:          *elastic,
			ReplanDebounce:   *replanDebounce,
			Logger:           logger,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsp-serve:", err)
		return 2
	}
	srv, err := sys.NewServer()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexsp-serve:", err)
		return 2
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	if *pprofAddr != "" {
		// pprof runs on its own listener so profiling stays reachable under
		// load and is never exposed on the public planning port.
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: obs.PprofMux()}
		go func() {
			log.Printf("flexsp-serve: pprof on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("flexsp-serve: pprof: %v", err)
			}
		}()
		defer pprofSrv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("flexsp-serve: listening on %s (%d devices%s, model %s, planner %s%s, strategies %s)",
			*addr, sys.Topo.NumDevices(), clusterNote(*clusterSpec), model.Name, plAlgo,
			calibrationNote(sys.Calibration()), strings.Join(srv.StrategyNames(), ","))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Printf("flexsp-serve: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising healthy, refuse new plan requests,
	// let http.Server.Shutdown wait for in-flight handlers (and their
	// solves) to finish.
	log.Printf("flexsp-serve: draining (timeout %s)", *drainTimeout)
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("flexsp-serve: shutdown: %v", err)
		srv.Close()
		return 1
	}
	// Stop the background replan loop and stream reaper after the listener
	// is gone so no handler observes a half-closed server.
	srv.Close()
	log.Print("flexsp-serve: drained")
	return 0
}

func clusterNote(spec string) string {
	if spec == "" {
		return ""
	}
	return ", cluster " + spec
}

func calibrationNote(tag string) string {
	if tag == "" {
		return ""
	}
	return ", calibration " + tag
}
