package server

import (
	"context"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"flexsp/internal/solver"
)

// planJob identifies one batchable planning request: the length multiset
// plus the strategy/maxCtx coordinates that change the resulting plan. The
// v1 batchers run with a fixed strategy; the /v2/plan batcher carries the
// request's strategy through, so only requests asking for the same plan
// coalesce.
type planJob struct {
	lens     []int
	strategy string
	maxCtx   int
	// explain asks the pass to attach provenance; it is a pass coordinate
	// because the encoded response differs.
	explain bool
}

// key returns the pass key and the canonical sorted length signature: the
// solver's multiset FNV-1a key folded with the strategy name, maxCtx and the
// explain flag, so two jobs share a pass only when every coordinate matches
// (the signature and the job fields are re-compared on join — hash
// collisions fall back to independent passes, never shared plans).
func (j planJob) key() ([]int32, uint64) {
	sig, key := solver.Signature(j.lens)
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(key >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(j.strategy))
	h.Write([]byte(strconv.Itoa(j.maxCtx)))
	if j.explain {
		h.Write([]byte("+explain"))
	}
	return sig, h.Sum64()
}

// batcher groups compatible requests into one solver pass. Two requests are
// compatible when they carry the same sequence-length multiset and the same
// strategy/maxCtx coordinates — the only sound grouping, since a plan
// depends on the whole batch and on what was asked of it. The first request
// for a job opens a pass and holds it open for the batching window;
// identical requests arriving within the window join the pass; when the
// window closes the opener solves once and every member receives the same
// pre-encoded response bytes, so coalesced responses are byte-identical by
// construction.
//
// Each pass carries a context that is canceled once every member's request
// context is done, so a solve whose consumers all disconnected (or were cut
// off by shutdown) stops at the next trial/micro-batch boundary instead of
// burning planner workers on a response nobody reads.
//
// A window of zero degenerates to pure singleflight: no added latency, but
// only requests overlapping an in-flight solve coalesce.
type batcher struct {
	window time.Duration
	// run executes one solver pass under the pass context and returns the
	// encoded response body and HTTP status shared by every member.
	run func(ctx context.Context, job planJob) ([]byte, int)

	mu     sync.Mutex
	passes map[uint64]*pass
}

type pass struct {
	done    chan struct{}
	sig     []int32 // canonical sorted signature (collision guard)
	job     planJob // the opener's job (strategy/maxCtx collision guard)
	members int

	// ctx is canceled when live — the number of member request contexts
	// not yet done — reaches zero.
	ctx    context.Context
	cancel context.CancelFunc
	liveMu sync.Mutex
	live   int

	body   []byte
	status int
}

// addMember counts a member's request context toward the pass lifetime: when
// the last live member disconnects, the pass context is canceled. The
// watcher goroutine exits when the request context is done, which the HTTP
// server guarantees at handler return.
func (p *pass) addMember(ctx context.Context) {
	p.liveMu.Lock()
	p.live++
	p.liveMu.Unlock()
	go func() {
		<-ctx.Done()
		p.liveMu.Lock()
		p.live--
		last := p.live == 0
		p.liveMu.Unlock()
		if last {
			p.cancel()
		}
	}()
}

func newBatcher(window time.Duration, run func(ctx context.Context, job planJob) ([]byte, int)) *batcher {
	return &batcher{window: window, run: run, passes: make(map[uint64]*pass)}
}

// do runs the job through the batcher. It returns the shared response body
// and status, the number of requests the pass served, and whether this
// caller joined another request's pass (true) or opened and ran its own
// (false). A canceled context while waiting returns ctx.Err(); the pass
// itself keeps running while it has other live members.
func (b *batcher) do(ctx context.Context, job planJob) (body []byte, status, members int, joined bool, err error) {
	sig, key := job.key()

	b.mu.Lock()
	if p, ok := b.passes[key]; ok && solver.SigsEqual(sig, p.sig) &&
		job.strategy == p.job.strategy && job.maxCtx == p.job.maxCtx &&
		job.explain == p.job.explain {
		p.members++
		p.addMember(ctx)
		b.mu.Unlock()
		select {
		case <-p.done:
			if p.status == 0 {
				// The opener was canceled before solving; run our own pass.
				return b.do(ctx, job)
			}
			return p.body, p.status, p.members, true, nil
		case <-ctx.Done():
			return nil, 0, 0, true, ctx.Err()
		}
	}
	p := &pass{done: make(chan struct{}), sig: sig, job: job, members: 1}
	// The pass context carries the opener's values (trace span, request ID)
	// but not its cancellation: the pass lives until the LAST member
	// disconnects, tracked by addMember, not until the opener does.
	p.ctx, p.cancel = context.WithCancel(context.WithoutCancel(ctx))
	p.addMember(ctx)
	// A hash collision with a different signature overwrites the map slot;
	// the displaced pass still completes (members hold the *pass directly).
	b.passes[key] = p
	b.mu.Unlock()

	if b.window > 0 {
		t := time.NewTimer(b.window)
		select {
		case <-t.C:
		case <-ctx.Done():
			// The opener is canceled: close the pass so members are not
			// stranded; whoever is waiting re-enters as its own opener.
			t.Stop()
			b.closePass(key, p, nil, 0)
			return nil, 0, 0, false, ctx.Err()
		}
	}

	// Remove the pass before solving so requests arriving mid-solve open a
	// fresh pass (they will typically hit the plan cache) instead of
	// extending this one indefinitely.
	b.mu.Lock()
	if b.passes[key] == p {
		delete(b.passes, key)
	}
	members = p.members
	b.mu.Unlock()

	body, status = b.run(p.ctx, job)
	p.body, p.status = body, status
	close(p.done)
	return body, status, members, false, nil
}

// closePass abandons a pass with the given result (used when the opener's
// context is canceled before the window fires).
func (b *batcher) closePass(key uint64, p *pass, body []byte, status int) {
	b.mu.Lock()
	if b.passes[key] == p {
		delete(b.passes, key)
	}
	b.mu.Unlock()
	p.body, p.status = body, status
	close(p.done)
}
