package experiments

import (
	"flexsp/internal/blaster"
	"flexsp/internal/bucket"
	"flexsp/internal/costmodel"
	"flexsp/internal/planner"
	"flexsp/internal/report"
	"flexsp/internal/workload"
)

// Table4Result reproduces paper Table 4: the maximum token estimation bias
// of DP vs naive bucketing per dataset, measured over the per-micro-batch
// bucketing the solver actually performs (Alg. 1 buckets after sorted
// blasting).
type Table4Result struct {
	Datasets []string
	DPError  []float64
	NaiveErr []float64
}

// Table4 runs the experiment: for each dataset, the maximum (over batches)
// token-weighted bucketing error.
func Table4(cfg Config) Table4Result {
	c := cfg.coeffs(costmodel.GPT7B)
	var res Table4Result
	for di, d := range workload.Datasets() {
		rng := cfg.rng(int64(400 + di))
		var maxDP, maxNaive float64
		for it := 0; it < cfg.Iterations; it++ {
			batch := d.Batch(rng, cfg.BatchSize, 192<<10)
			m := blaster.MinMicroBatches(batch, c.ClusterTokenCapacity())
			if m < 1 {
				continue
			}
			micro, err := blaster.Blast(batch, m)
			if err != nil {
				continue
			}
			var dpDev, naiveDev, total float64
			for _, mb := range micro {
				tok := float64(workload.TotalTokens(mb))
				dpDev += bucket.TokenError(bucket.DP(mb, bucket.DefaultQ)) * tok
				naiveDev += bucket.TokenError(bucket.Naive(mb, planner.NaiveBucketWidth)) * tok
				total += tok
			}
			if e := dpDev / total; e > maxDP {
				maxDP = e
			}
			if e := naiveDev / total; e > maxNaive {
				maxNaive = e
			}
		}
		res.Datasets = append(res.Datasets, d.Name)
		res.DPError = append(res.DPError, maxDP)
		res.NaiveErr = append(res.NaiveErr, maxNaive)
	}
	return res
}

// Render formats the comparison like the paper's Table 4.
func (r Table4Result) Render() string {
	headers := append([]string{"Token Error"}, r.Datasets...)
	t := report.NewTable("Table 4: token estimation bias of bucketing methods", headers...)
	dp := []string{"DP Bucketing"}
	nv := []string{"Naive Bucketing"}
	for i := range r.Datasets {
		dp = append(dp, report.Pct(r.DPError[i]))
		nv = append(nv, report.Pct(r.NaiveErr[i]))
	}
	t.Add(dp...)
	t.Add(nv...)
	return t.String()
}
