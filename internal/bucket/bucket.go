// Package bucket implements FlexSP's sequence bucketing (paper §4.1.3):
// grouping the K sequences of a micro-batch into Q buckets so the MILP of
// problem (17) has Q×P instead of K×P decision variables. The dynamic
// programming algorithm (Eq. 15–16) chooses bucket boundaries minimizing the
// total deviation of each sequence to its bucket's upper limit; the naive
// fixed-interval alternative is retained for the Table 4 / Fig. 7 ablations.
package bucket

import (
	"fmt"
	"sort"
)

// Bucket groups sequences whose lengths fall in (prev upper, Upper].
type Bucket struct {
	// Upper is the representative length ŝ_q: every member is costed as if
	// it had this length.
	Upper int
	// Lens are the member sequence lengths (ascending).
	Lens []int
}

// Count returns b̂_q, the number of sequences in the bucket.
func (b Bucket) Count() int { return len(b.Lens) }

func (b Bucket) String() string { return fmt.Sprintf("bucket(≤%d, %d seqs)", b.Upper, len(b.Lens)) }

// DefaultQ is the paper's default bucket count (§4.1.3).
const DefaultQ = 16

// DP buckets the sequences into at most q buckets using the dynamic program
// of Eq. 16: err[k][q] = min_j { err[j][q-1] + Σ_{i=j+1..k} (s_k − s_i) }.
// The returned buckets are in ascending order of Upper and jointly contain
// every input sequence. If there are at most q distinct lengths the
// bucketing is exact (zero error).
func DP(lens []int, q int) []Bucket {
	if len(lens) == 0 {
		return nil
	}
	if q <= 0 {
		panic("bucket: q must be positive")
	}
	s := append([]int(nil), lens...)
	sort.Ints(s)
	k := len(s)
	// More buckets than distinct lengths would force duplicate bucket
	// boundaries; clamp so the bucketing stays well formed (and exact).
	distinct := 1
	for i := 1; i < k; i++ {
		if s[i] != s[i-1] {
			distinct++
		}
	}
	if q > distinct {
		q = distinct
	}

	// prefix[i] = s[0] + ... + s[i-1] for O(1) range deviation sums.
	prefix := make([]int64, k+1)
	for i, v := range s {
		prefix[i+1] = prefix[i] + int64(v)
	}
	// dev(j, i): Σ_{t=j..i-1} (s[i-1] − s[t]) — deviation of sequences
	// j..i-1 to the bucket upper limit s[i-1].
	dev := func(j, i int) int64 {
		return int64(i-j)*int64(s[i-1]) - (prefix[i] - prefix[j])
	}

	const inf = int64(1) << 62
	// err[i][b]: min error bucketing the first i sequences into b buckets.
	err := make([][]int64, k+1)
	choice := make([][]int, k+1)
	for i := range err {
		err[i] = make([]int64, q+1)
		choice[i] = make([]int, q+1)
		for b := range err[i] {
			err[i][b] = inf
		}
	}
	err[0][0] = 0
	for b := 1; b <= q; b++ {
		for i := 1; i <= k; i++ {
			for j := b - 1; j < i; j++ {
				if err[j][b-1] == inf {
					continue
				}
				if e := err[j][b-1] + dev(j, i); e < err[i][b] {
					err[i][b] = e
					choice[i][b] = j
				}
			}
		}
	}

	// The error is non-increasing in b; using exactly q buckets (or k if
	// fewer sequences) is optimal.
	best := q
	// Reconstruct boundaries.
	var cuts []int // exclusive end indices, reversed
	for i, b := k, best; b > 0; b-- {
		cuts = append(cuts, i)
		i = choice[i][b]
	}
	buckets := make([]Bucket, 0, len(cuts))
	start := 0
	for i := len(cuts) - 1; i >= 0; i-- {
		end := cuts[i]
		buckets = append(buckets, Bucket{
			Upper: s[end-1],
			Lens:  append([]int(nil), s[start:end]...),
		})
		start = end
	}
	return buckets
}

// Naive buckets the sequences into fixed-width intervals (0, w], (w, 2w], …
// (paper §4.1.3's strawman, default w = 2K). Empty intervals are dropped.
func Naive(lens []int, width int) []Bucket {
	if width <= 0 {
		panic("bucket: width must be positive")
	}
	if len(lens) == 0 {
		return nil
	}
	s := append([]int(nil), lens...)
	sort.Ints(s)
	byBin := map[int][]int{}
	var bins []int
	for _, l := range s {
		bin := (l + width - 1) / width
		if bin == 0 {
			bin = 1
		}
		if _, ok := byBin[bin]; !ok {
			bins = append(bins, bin)
		}
		byBin[bin] = append(byBin[bin], l)
	}
	sort.Ints(bins)
	out := make([]Bucket, 0, len(bins))
	for _, bin := range bins {
		out = append(out, Bucket{Upper: bin * width, Lens: byBin[bin]})
	}
	return out
}

// TokenError measures the estimation bias of a bucketing (paper Table 4):
// the summed deviation of representative lengths from true lengths, divided
// by the true total token count.
func TokenError(buckets []Bucket) float64 {
	var total, err int64
	for _, b := range buckets {
		for _, l := range b.Lens {
			total += int64(l)
			err += int64(b.Upper - l)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(err) / float64(total)
}

// TotalCount sums bucket membership.
func TotalCount(buckets []Bucket) int {
	n := 0
	for _, b := range buckets {
		n += b.Count()
	}
	return n
}

// Validate checks bucketing invariants: ascending non-overlapping uppers,
// members within (previous upper, upper], all inputs covered.
func Validate(buckets []Bucket, lens []int) error {
	prev := 0
	want := map[int]int{}
	for _, l := range lens {
		want[l]++
	}
	for _, b := range buckets {
		if b.Upper <= prev {
			return fmt.Errorf("bucket: uppers not strictly ascending at %d", b.Upper)
		}
		if b.Count() == 0 {
			return fmt.Errorf("bucket: empty bucket ≤%d", b.Upper)
		}
		for _, l := range b.Lens {
			if l > b.Upper || l <= prev {
				return fmt.Errorf("bucket: %d outside (%d, %d]", l, prev, b.Upper)
			}
			want[l]--
			if want[l] < 0 {
				return fmt.Errorf("bucket: unexpected length %d", l)
			}
		}
		prev = b.Upper
	}
	for l, c := range want {
		if c != 0 {
			return fmt.Errorf("bucket: %d sequences of length %d missing", c, l)
		}
	}
	return nil
}
