// Package obs is the zero-dependency observability substrate threaded
// through the whole planning path: context-carried spans (exported as Chrome
// trace_event JSON for chrome://tracing / Perfetto), a small Prometheus-
// compatible metrics registry (counters, gauges, fixed-bucket histograms),
// request-ID propagation for structured logs, and shared pprof helpers for
// the CLIs and the daemon.
//
// Tracing is opt-in per request: a collector is installed with NewTrace, and
// every instrumentation point calls
//
//	ctx, sp := obs.Start(ctx, "solver.trial")
//	defer sp.End()
//	sp.SetAttr("m", m)
//
// When no trace is installed Start returns a nil span whose methods are
// no-ops, so instrumented hot paths pay one context lookup and nothing else —
// the solver and planner benchmarks must not regress with tracing disabled.
// Spans are safe for concurrent use: the parallel branch-and-bound and the
// solver's worker pools attach children to one parent from many goroutines.
package obs

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ctxKey keys the obs context values.
type ctxKey int

const (
	spanKey ctxKey = iota
	requestIDKey
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation in a trace tree. A nil *Span is a valid no-op
// span (the tracing-disabled fast path); all methods are nil-safe.
type Span struct {
	tr    *Trace
	name  string
	start time.Duration // offset from trace start
	seq   int64         // creation order within the trace (export tie-break)

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Name returns the span's name ("" for the nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span. Setting an existing key replaces its value.
// No-op on the nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError records err under the "error" attr when non-nil.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// End marks the span finished, recording its duration. Idempotent; no-op on
// the nil span. Ending a span whose context was canceled mid-flight is valid
// — spans measure wall time and are not tied to context cancellation.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = s.tr.clock() - s.start
	}
	s.mu.Unlock()
}

// StartChild starts a child span directly, without a context. It exists for
// worker loops (e.g. the branch-and-bound pool) that hold a parent span but
// no per-iteration context; on a nil receiver it returns nil, keeping the
// disabled path free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: s.tr.clock(), seq: s.tr.seq.Add(1)}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// snapshot copies the span's mutable state for export.
func (s *Span) snapshot(now time.Duration) (dur time.Duration, ended bool, attrs []Attr, children []*Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dur = s.dur
	if !s.ended {
		dur = now - s.start
		if dur < 0 {
			dur = 0
		}
	}
	return dur, s.ended, append([]Attr(nil), s.attrs...), append([]*Span(nil), s.children...)
}

// Trace is one trace tree: a root span plus everything started under it.
type Trace struct {
	id      string
	started time.Time
	root    *Span
	seq     atomic.Int64
	// now returns the offset from trace start; tests replace it for
	// deterministic exports.
	now func() time.Duration
}

// traceCounter makes trace and request IDs unique within the process.
var traceCounter atomic.Int64

// newID builds a short process-unique hex ID with the given prefix.
func newID(prefix string) string {
	return fmt.Sprintf("%s-%x-%04x", prefix, os.Getpid(), traceCounter.Add(1))
}

// NewTrace installs a trace collector on the context and opens its root
// span. Every subsequent Start under the returned context records into this
// trace. End the root (or the whole trace) with Trace.End before exporting.
func NewTrace(ctx context.Context, name string) (context.Context, *Trace) {
	tr := &Trace{id: newID("t"), started: time.Now()}
	tr.now = func() time.Duration { return time.Since(tr.started) }
	tr.root = &Span{tr: tr, name: name, start: 0, seq: tr.seq.Add(1)}
	return withSpan(ctx, tr.root), tr
}

// ID returns the trace's process-unique identifier.
func (t *Trace) ID() string { return t.id }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// End ends the root span.
func (t *Trace) End() { t.root.End() }

// clock returns the current offset from trace start.
func (t *Trace) clock() time.Duration { return t.now() }

// Start opens a child span of the context's current span and returns a
// context carrying it. With no trace installed it returns the context
// unchanged and a nil span — one context lookup, no allocation — so
// instrumentation may run unconditionally on hot paths.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return withSpan(ctx, c), c
}

// FromContext returns the context's current span, or nil when tracing is
// disabled. Use it to annotate the enclosing span without opening a child.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Enabled reports whether a trace collector is installed on the context.
func Enabled(ctx context.Context) bool { return FromContext(ctx) != nil }

// WithRequestID returns a context carrying the request ID, propagated
// client → server → solver and stamped into structured logs and span attrs.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return withValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID ("" when unset).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// NewRequestID mints a process-unique request ID.
func NewRequestID() string { return newID("r") }

// withSpan installs s as the context's current span.
func withSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// withValue wraps context.WithValue with the package's private key type.
func withValue(ctx context.Context, key ctxKey, v any) context.Context {
	return context.WithValue(ctx, key, v)
}
