package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sample(i int) Iteration {
	return Iteration{
		Iter: i, Tokens: 1000 * (i + 1), Seqs: 10, MicroBatches: 2,
		Groups:     []int{32, 8, 8},
		EstSeconds: 10, ExecSeconds: 10.5, AllToAllSeconds: 2,
		SolveSeconds: float64(i + 1), PeakMemFrac: 0.9,
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf)
	for i := 0; i < 5; i++ {
		if err := r.Record(sample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Fatalf("wrote %d lines, want 5", lines)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 || back[3].Tokens != 4000 || back[3].Groups[0] != 32 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(nil)
	for i := 0; i < 10; i++ {
		_ = r.Record(sample(i))
	}
	s, err := r.Summarize(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations != 8 || s.Warmup != 2 {
		t.Fatalf("summary counts: %+v", s)
	}
	if math.Abs(s.MeanExecSeconds-10.5) > 1e-12 {
		t.Fatalf("mean exec = %v", s.MeanExecSeconds)
	}
	// est=10, exec=10.5 → error ≈ 4.76%.
	if s.EstimateError < 0.04 || s.EstimateError > 0.06 {
		t.Fatalf("estimate error = %v", s.EstimateError)
	}
	if math.Abs(s.AllToAllShare-2.0/10.5) > 1e-12 {
		t.Fatalf("a2a share = %v", s.AllToAllShare)
	}
	// Solve times after warm-up are 3..10 → p50=6 or 7, p95 near 10.
	if s.SolveP50 < 5 || s.SolveP50 > 8 || s.SolveP95 < 8 {
		t.Fatalf("solve percentiles: %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	r := NewRecorder(nil)
	if _, err := r.Summarize(0); err == nil {
		t.Fatal("empty recorder should error")
	}
	_ = r.Record(sample(0))
	if _, err := r.Summarize(5); err == nil {
		t.Fatal("warmup beyond records should error")
	}
	if _, err := r.Summarize(-1); err != nil {
		t.Fatal("negative warmup should clamp, not fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{bad json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPercentileEmpty(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}
