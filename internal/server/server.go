// Package server turns the FlexSP solver into a long-lived HTTP/JSON
// planning daemon — the solver-as-a-service deployment of paper §5, where
// sequence-parallel planning is disaggregated from training and runs ahead
// of each step as a standalone, multi-tenant component.
//
// The daemon speaks a versioned wire protocol over a solver.Solver, the
// joint PP×SP pipeline.Planner, and any extra named strategies supplied by
// the facade:
//
//	POST /v2/plan             {"strategy","lengths","maxCtx","tenant",
//	                          "explain"} → tagged plan envelope (version,
//	                          strategy, flat | pipelined | megatron section,
//	                          optional provenance)
//	POST /v1/solve            v1 shim: the flexsp strategy, flat section
//	                          only — byte-identical to the v1 protocol
//	POST /v1/solve/pipelined  v1 shim: the pipeline strategy
//	POST /v2/stream/open      open a streaming session → {"session", ...};
//	                          sequences append incrementally and watermark
//	                          crossings launch speculative background solves
//	POST /v2/stream/{id}/append  {"lengths"} → running total
//	POST /v2/stream/{id}/close   seal the session → plan envelope, the final
//	                          solve warm-started from (or replaced by) the
//	                          speculative incumbent
//	POST /v2/topology         {"events":[...]} → apply topology events to the
//	                          elastic fleet and wake the background replan
//	                          loop (501 on a static daemon)
//	GET  /v2/topology         live-fleet summary: version, health counts,
//	                          replan progress
//	GET  /v1/metrics          cache/dedup counters, queue depth, p50/p99
//	GET  /metrics             the same counters as Prometheus text
//	GET  /v2/trace            recent request trace IDs, newest first
//	GET  /v2/trace/{id}       one request's Chrome-trace JSON export
//	GET  /healthz             liveness (503 while draining)
//
// An elastic daemon (Config.Topology + Config.Rebuild) additionally keeps
// its plan state in step with a live fleet: topology events debounce into a
// background replan that rebuilds the solver for the new fleet and repairs
// the last served plan via solver.Resolve, while requests racing the replan
// are served from the best incumbent state flagged "degraded":true.
//
// Three layers keep it standing under heavy traffic: admission control (a
// bounded queue plus per-tenant concurrency limits, overflow answered with
// 429), request batching (compatible requests — same lengths, strategy,
// maxCtx and explain flag — arriving within a short window coalesce into one
// solver pass and share one pre-encoded response), and the solver's sharded
// PlanCache (repeated length signatures skip planning entirely). Drain()
// plus http.Server.Shutdown give a graceful SIGTERM: in-flight solves
// complete, new work is refused with 503.
//
// Every request is traced end to end: the handler opens an obs trace whose
// spans cover the batching pass, the solver trials and micro-batch plans,
// and the branch-and-bound search; completed traces land in a bounded ring
// served by GET /v2/trace/{id}, and the trace and request IDs echo back in
// the X-Flexsp-Trace-Id and X-Flexsp-Request-Id response headers.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexsp/internal/cluster"
	"flexsp/internal/obs"
	"flexsp/internal/pipeline"
	"flexsp/internal/solver"
)

// PlanSpec is what one strategy invocation is asked to plan: the batch, the
// baseline sizing knob, and whether to attach provenance to the envelope.
type PlanSpec struct {
	// Lengths is the batch's sequence lengths.
	Lengths []int
	// MaxCtx sizes the static baselines (deepspeed, megatron); adaptive
	// strategies ignore it.
	MaxCtx int
	// Explain asks the strategy to attach ExplainJSON provenance.
	Explain bool
}

// StrategyFunc produces one named strategy's tagged plan envelope for POST
// /v2/plan. The facade registers its strategy registry here; the flexsp and
// pipeline strategies are built in (they run on the server's own solver and
// joint planner, shared with the v1 shims).
type StrategyFunc func(ctx context.Context, spec PlanSpec) (PlanEnvelope, error)

// Config configures a Server.
type Config struct {
	// Solver handles the flexsp strategy (and the /v1/solve shim);
	// required. If it has no PlanCache one is attached (sized by
	// CacheEntries/CacheGranularity), so repeated signatures always hit.
	Solver *solver.Solver
	// CacheEntries and CacheGranularity size the plan cache attached when
	// Solver arrives without one (defaults 1024 entries, 256-token
	// rounding); they are ignored for a solver that already has a cache.
	CacheEntries, CacheGranularity int
	// Joint handles the pipeline strategy (and the /v1/solve/pipelined
	// shim); nil answers those with 501.
	Joint *pipeline.Planner
	// Strategies adds extra named strategies to POST /v2/plan (the facade
	// passes its registry: deepspeed, batchada, megatron, plus any custom
	// registrations). Entries named "flexsp" or "pipeline" are ignored —
	// the built-ins own those names.
	Strategies map[string]StrategyFunc
	// QueueLimit bounds admitted requests (waiting in a batching window or
	// solving); overflow is answered with 429. Default 64.
	QueueLimit int
	// TenantLimit bounds concurrently admitted requests per tenant label
	// (the empty tenant is one shared bucket). Default 16.
	TenantLimit int
	// BatchWindow is how long the first request for a signature waits for
	// compatible requests to coalesce with before solving. Zero takes the
	// 2ms default; negative disables the wait, leaving pure singleflight
	// (no added latency, but only requests overlapping an in-flight solve
	// coalesce).
	BatchWindow time.Duration
	// TraceEntries bounds the ring of completed request traces behind
	// GET /v2/trace/{id}. Zero takes the default 64; negative disables
	// per-request tracing entirely.
	TraceEntries int
	// StreamLimit bounds concurrently open streaming sessions; opens beyond
	// it are refused with 429. Default 64.
	StreamLimit int
	// StreamTimeout reaps a streaming session idle (no append or close)
	// for this long. Zero takes the 60s default; negative disables the
	// idle timeout.
	StreamTimeout time.Duration
	// StreamWatermarks are the default batch-fill fractions at which
	// sessions opened with an expect hint launch speculative solves; empty
	// takes solver.DefaultWatermarks. Per-session watermarks in the open
	// request override them.
	StreamWatermarks []float64
	// Logger receives structured request and lifecycle logs (requests at
	// Debug, drain at Info). Nil discards.
	Logger *slog.Logger
	// Topology makes the daemon elastic: POST /v2/topology applies events
	// to it and a background loop replans after changes. Requires Rebuild.
	// Nil keeps the daemon static (topology routes answer 501).
	Topology *cluster.Elastic
	// Rebuild constructs the solver and joint planner for a new topology
	// snapshot during a replan. The returned solver may come without a
	// cache; one is attached (CacheEntries/CacheGranularity). Errors keep
	// the previous plan state serving, flagged degraded.
	Rebuild func(cluster.Snapshot) (*solver.Solver, *pipeline.Planner, error)
	// ReplanDebounce is how long the replan loop waits after a topology
	// event for further events to coalesce before replanning. Zero takes
	// the 100ms default; negative replans immediately.
	ReplanDebounce time.Duration
	// ResolveColdFraction is passed to solver.Resolve during replans (the
	// repair give-up threshold); zero takes the solver default.
	ResolveColdFraction float64
	// EnvelopeCacheEntries bounds the cache of pre-encoded /v2/plan
	// envelopes behind GET /v2/cache/{sig} — the peer-fetch tier a fleet
	// router probes before routing a rebalanced signature to a cold solve.
	// Zero takes the 512 default; negative disables the endpoint (404-free:
	// it answers 501).
	EnvelopeCacheEntries int
	// Calibration identifies the fitted cost-model coefficient set the
	// daemon's solvers plan with. The zero value means the analytic built-in
	// profile: the calibration gauge reports version 0 and envelopes carry no
	// calibration tag.
	Calibration CalibrationInfo
}

// Server is the planning daemon. It implements http.Handler; wrap it in an
// http.Server (or httptest.Server) to serve it.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	solve      *batcher // /v1/solve shim passes
	piped      *batcher // /v1/solve/pipelined shim passes
	v2         *batcher // /v2/plan passes, keyed by (strategy, maxCtx, explain, lengths)
	strategies map[string]StrategyFunc
	start      time.Time
	logger     *slog.Logger

	sem      chan struct{} // admission slots; len(sem) is the queue depth
	draining atomic.Bool

	tenantMu sync.Mutex
	tenants  map[string]int

	streamMu sync.Mutex
	streams  map[string]*streamSession

	// planning is the atomically swapped plan state (solver, joint planner,
	// topology snapshot); the replan loop is its only writer. lastSolve
	// feeds plan repair; retired* accumulate counters of solvers replaced
	// by replans so Prometheus series stay monotonic across swaps.
	planning      atomic.Pointer[planState]
	lastMu        sync.Mutex
	last          *lastSolve
	replanCancel  context.CancelFunc
	replanDone    chan struct{}
	closeOnce     sync.Once
	retiredMu     sync.Mutex
	retiredCache  solver.CacheStats
	retiredSolver solver.SolverMetrics

	met       metrics
	reg       *obs.Registry
	traces    *traceRing
	traced    *obs.Counter
	envelopes *envelopeCache
}

// New builds a Server. A nil cfg.Solver is a configuration error and is
// returned as one, not panicked on.
func New(cfg Config) (*Server, error) {
	if cfg.Solver == nil {
		return nil, fmt.Errorf("server: Config.Solver is required")
	}
	if cfg.Solver.Cache == nil {
		cfg.Solver.Cache = solver.NewPlanCache(cfg.CacheEntries, cfg.CacheGranularity)
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.TenantLimit <= 0 {
		cfg.TenantLimit = 16
	}
	switch {
	case cfg.BatchWindow == 0:
		cfg.BatchWindow = 2 * time.Millisecond
	case cfg.BatchWindow < 0:
		cfg.BatchWindow = 0
	}
	if cfg.StreamLimit <= 0 {
		cfg.StreamLimit = 64
	}
	switch {
	case cfg.StreamTimeout == 0:
		cfg.StreamTimeout = 60 * time.Second
	case cfg.StreamTimeout < 0:
		cfg.StreamTimeout = 0
	}
	switch {
	case cfg.ReplanDebounce == 0:
		cfg.ReplanDebounce = 100 * time.Millisecond
	case cfg.ReplanDebounce < 0:
		cfg.ReplanDebounce = 0
	}
	if cfg.Topology != nil && cfg.Rebuild == nil {
		return nil, fmt.Errorf("server: Config.Topology requires Config.Rebuild")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		logger:  logger,
		sem:     make(chan struct{}, cfg.QueueLimit),
		tenants: make(map[string]int),
		streams: make(map[string]*streamSession),
		met:     newMetrics(reg),
		reg:     reg,
	}
	switch {
	case cfg.TraceEntries == 0:
		s.traces = newTraceRing(64)
	case cfg.TraceEntries > 0:
		s.traces = newTraceRing(cfg.TraceEntries)
	}
	switch {
	case cfg.EnvelopeCacheEntries == 0:
		s.envelopes = newEnvelopeCache(512)
	case cfg.EnvelopeCacheEntries > 0:
		s.envelopes = newEnvelopeCache(cfg.EnvelopeCacheEntries)
	}
	st := &planState{solver: cfg.Solver, joint: cfg.Joint}
	if cfg.Topology != nil {
		st.snap = cfg.Topology.Snapshot()
	}
	s.planning.Store(st)
	s.registerGauges()
	s.strategies = map[string]StrategyFunc{"flexsp": s.planFlexSP}
	if cfg.Joint != nil {
		s.strategies["pipeline"] = s.planPipelined
	}
	for name, fn := range cfg.Strategies {
		name = strings.ToLower(name)
		if name == "" || name == "flexsp" || name == "pipeline" || fn == nil {
			continue
		}
		s.strategies[name] = fn
	}
	s.solve = newBatcher(cfg.BatchWindow, s.runV1Solve)
	s.piped = newBatcher(cfg.BatchWindow, s.runV1Pipelined)
	s.v2 = newBatcher(cfg.BatchWindow, s.runV2)
	s.mux.HandleFunc("POST /v2/plan", s.handlePlanV2)
	s.mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		var req SolveRequest
		if !decodeRequest(w, r, &req, &s.met) {
			return
		}
		s.servePlan(w, r, s.solve, planJob{lens: req.Lengths, strategy: "flexsp"}, req.Tenant)
	})
	s.mux.HandleFunc("POST /v1/solve/pipelined", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Joint == nil {
			s.met.errors.Add(1)
			writeError(w, http.StatusNotImplemented, "pipelined planning not configured")
			return
		}
		var req SolveRequest
		if !decodeRequest(w, r, &req, &s.met) {
			return
		}
		s.servePlan(w, r, s.piped, planJob{lens: req.Lengths, strategy: "pipeline"}, req.Tenant)
	})
	s.mux.HandleFunc("POST /v2/stream/open", s.handleStreamOpen)
	s.mux.HandleFunc("POST /v2/stream/{id}/append", s.handleStreamAppend)
	s.mux.HandleFunc("POST /v2/stream/{id}/close", s.handleStreamClose)
	s.mux.HandleFunc("GET /v2/cache/{sig}", s.handleCacheFetch)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handlePrometheus)
	s.mux.HandleFunc("GET /v2/trace", s.handleTraceList)
	s.mux.HandleFunc("GET /v2/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("POST /v2/topology", s.handleTopologyPost)
	s.mux.HandleFunc("GET /v2/topology", s.handleTopologyGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if cfg.Topology != nil {
		rctx, cancel := context.WithCancel(context.Background())
		s.replanCancel = cancel
		s.replanDone = make(chan struct{})
		go s.replanLoop(rctx)
	}
	return s, nil
}

// Close stops the background replan loop (a no-op on a static daemon). It
// is idempotent and safe to call while requests are in flight: the current
// plan state keeps serving, it just stops tracking topology events.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.replanCancel != nil {
			s.replanCancel()
			<-s.replanDone
		}
	})
}

// registerGauges wires the derived series — uptime, queue state, plan-cache
// and solver counters — into the Prometheus registry as read-on-scrape
// functions, so the hot path pays nothing for them.
func (s *Server) registerGauges() {
	s.reg.GaugeFunc("flexsp_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("flexsp_draining", "1 while draining, else 0.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("flexsp_queue_depth", "Requests currently admitted (batching window or solving).",
		func() float64 { return float64(len(s.sem)) })
	s.reg.GaugeFunc("flexsp_queue_limit", "Admission queue bound.",
		func() float64 { return float64(s.cfg.QueueLimit) })
	s.reg.CounterFunc("flexsp_plan_cache_hits_total", "Plan cache hits.",
		func() float64 { return float64(s.cacheStats().Hits) })
	s.reg.CounterFunc("flexsp_plan_cache_misses_total", "Plan cache misses.",
		func() float64 { return float64(s.cacheStats().Misses) })
	s.reg.CounterFunc("flexsp_plan_cache_dedups_total", "In-flight plan deduplications.",
		func() float64 { return float64(s.cacheStats().Dedups) })
	s.reg.CounterFunc("flexsp_plan_cache_evictions_total", "Plan cache evictions.",
		func() float64 { return float64(s.cacheStats().Evictions) })
	s.reg.GaugeFunc("flexsp_plan_cache_entries", "Plans currently cached.",
		func() float64 { return float64(s.planState().solver.Cache.Len()) })
	s.reg.CounterFunc("flexsp_solver_solves_total", "Completed solver calls.",
		func() float64 { return float64(s.solverMetrics().Solves) })
	s.reg.CounterFunc("flexsp_solver_canceled_total", "Solver calls canceled by context.",
		func() float64 { return float64(s.solverMetrics().Canceled) })
	s.reg.CounterFunc("flexsp_solver_planned_total", "Micro-batches that reached the planner.",
		func() float64 { return float64(s.solverMetrics().Planned) })
	s.reg.CounterFunc("flexsp_solver_deduped_total", "Micro-batches served by in-flight dedup.",
		func() float64 { return float64(s.solverMetrics().Deduped) })
	s.reg.CounterFunc("flexsp_solver_skipped_total", "Speculative solves skipped by the cache probe.",
		func() float64 { return float64(s.solverMetrics().Skipped) })
	if s.cfg.Topology != nil {
		s.reg.GaugeFunc("flexsp_topology_version", "Current topology version of the elastic fleet.",
			func() float64 { return float64(s.cfg.Topology.Version()) })
		s.reg.GaugeFunc("flexsp_topology_plan_version", "Topology version the serving plan state was built for.",
			func() float64 { return float64(s.planState().snap.Version) })
		s.reg.GaugeFunc("flexsp_topology_nodes_down", "Physical nodes currently down.",
			func() float64 { return float64(s.cfg.Topology.Snapshot().Down) })
		s.reg.GaugeFunc("flexsp_topology_nodes_straggling", "Physical nodes currently straggling.",
			func() float64 { return float64(s.cfg.Topology.Snapshot().Straggling) })
	}
	s.reg.GaugeFunc("flexsp_stream_sessions", "Streaming sessions currently open.",
		func() float64 {
			s.streamMu.Lock()
			defer s.streamMu.Unlock()
			return float64(len(s.streams))
		})
	if s.envelopes != nil {
		s.reg.GaugeFunc("flexsp_envelope_cache_entries", "Pre-encoded /v2/plan envelopes cached for peer fetch.",
			func() float64 { return float64(s.envelopes.len()) })
	}
	s.reg.GaugeFunc("flexsp_calibration_version", "Version of the loaded cost-model calibration (0 = analytic defaults).",
		func() float64 { return float64(s.cfg.Calibration.Version) })
	s.reg.GaugeFunc("flexsp_calibration_staleness_seconds", "Seconds since the loaded calibration was fitted (0 when uncalibrated or unstamped).",
		func() float64 { return s.cfg.Calibration.staleness() })
	s.traced = s.reg.Counter("flexsp_traces_recorded_total", "Request traces recorded in the ring.")
}

// Registry exposes the daemon's metric registry so embedders (and the
// flexsp-serve binary) can add their own series to GET /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// StrategyNames returns the names POST /v2/plan accepts, sorted.
func (s *Server) StrategyNames() []string {
	names := make([]string, 0, len(s.strategies))
	for name := range s.strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ServeHTTP dispatches to the daemon's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain puts the server into draining mode: /healthz turns 503 (so load
// balancers stop routing here) and new plan requests are refused with 503,
// while requests already admitted run to completion. Pair it with
// http.Server.Shutdown, which waits for in-flight handlers, for a graceful
// SIGTERM.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		s.logger.Info("draining: refusing new plan requests")
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	return s.draining.Load()
}

// statusClientGone is nginx's 499 "client closed request": every member of
// the pass disconnected, so the solve was abandoned and nobody reads the
// response. It must be non-zero — status 0 marks an abandoned-before-solve
// pass that joiners retry.
const statusClientGone = 499

// planFlexSP is the built-in flexsp strategy: one solve on the current plan
// state's solver, wrapped in the v2 envelope. The /v1/solve shim serves
// exactly this envelope's flat section. On an elastic daemon the solve also
// records its incumbent so the replan loop can repair it after topology
// changes, and the envelope is flagged degraded while the plan state lags
// the fleet.
func (s *Server) planFlexSP(ctx context.Context, spec PlanSpec) (PlanEnvelope, error) {
	st := s.planState()
	var res solver.Result
	var err error
	if s.cfg.Topology == nil {
		res, err = st.solver.SolveContext(ctx, spec.Lengths)
	} else {
		var inc *solver.Incumbent
		res, inc, err = st.solver.SolveWarm(ctx, spec.Lengths, nil)
		if err == nil && inc != nil {
			s.recordSolve(spec.Lengths, inc, st.snap)
		}
	}
	if err != nil {
		return PlanEnvelope{}, err
	}
	sr := EncodeResult(res)
	env := PlanEnvelope{
		Version:          WireVersion,
		Strategy:         "flexsp",
		EstTime:          sr.EstTime,
		SolveWallSeconds: sr.SolveWallSeconds,
		Degraded:         s.degraded(st),
		Calibration:      s.cfg.Calibration.Tag,
		Flat:             &sr,
	}
	if env.Degraded {
		s.met.degradedPlans.Add(1)
	}
	if spec.Explain {
		env.Explain = ExplainFlat(st.solver.Planner, res, "flexsp")
		env.Explain.Calibration = s.cfg.Calibration.Tag
	}
	return env, nil
}

// planPipelined is the built-in pipeline strategy over the joint PP×SP
// planner; the /v1/solve/pipelined shim serves its pipelined section.
func (s *Server) planPipelined(ctx context.Context, spec PlanSpec) (PlanEnvelope, error) {
	st := s.planState()
	if st.joint == nil {
		return PlanEnvelope{}, fmt.Errorf("pipelined planning not configured")
	}
	res, err := st.joint.SolveContext(ctx, spec.Lengths)
	if err != nil {
		return PlanEnvelope{}, err
	}
	pr := EncodePipelined(res)
	env := PlanEnvelope{
		Version:          WireVersion,
		Strategy:         "pipeline",
		EstTime:          pr.EstTime,
		SolveWallSeconds: pr.SolveWallSeconds,
		Degraded:         s.degraded(st),
		Calibration:      s.cfg.Calibration.Tag,
		Pipelined:        &pr,
	}
	if env.Degraded {
		s.met.degradedPlans.Add(1)
	}
	if spec.Explain {
		env.Explain = ExplainPipelined(st.solver.Planner, res)
		env.Explain.Calibration = s.cfg.Calibration.Tag
	}
	return env, nil
}

// runStrategy executes one strategy pass and encodes the body with the given
// encoder (the full envelope for v2, a single section for the v1 shims).
func (s *Server) runStrategy(ctx context.Context, job planJob, encode func(PlanEnvelope) []byte) ([]byte, int) {
	s.met.solves.Add(1)
	ctx, span := obs.Start(ctx, "server.pass")
	defer span.End()
	span.SetAttr("strategy", job.strategy)
	span.SetAttr("seqs", len(job.lens))
	fn := s.strategies[job.strategy] // validated before admission
	env, err := fn(ctx, PlanSpec{Lengths: job.lens, MaxCtx: job.maxCtx, Explain: job.explain})
	switch {
	case ctx.Err() != nil:
		span.SetError(ctx.Err())
		return encodeJSON(ErrorResponse{Error: "canceled: all requesting clients disconnected"}), statusClientGone
	case err != nil:
		span.SetError(err)
		return encodeJSON(ErrorResponse{Error: err.Error()}), http.StatusUnprocessableEntity
	}
	span.SetAttr("est_time", env.EstTime)
	return encode(env), http.StatusOK
}

// runV1Solve is the /v1/solve shim's batcher pass: the flexsp strategy with
// only the envelope's flat section encoded — byte-identical to the v1
// protocol.
func (s *Server) runV1Solve(ctx context.Context, job planJob) ([]byte, int) {
	return s.runStrategy(ctx, job, func(env PlanEnvelope) []byte { return encodeJSON(*env.Flat) })
}

// runV1Pipelined is the /v1/solve/pipelined shim's pass.
func (s *Server) runV1Pipelined(ctx context.Context, job planJob) ([]byte, int) {
	return s.runStrategy(ctx, job, func(env PlanEnvelope) []byte { return encodeJSON(*env.Pipelined) })
}

// runV2 is the /v2/plan pass: the full tagged envelope. Successful passes
// also land in the envelope cache behind GET /v2/cache/{sig}, so fleet peers
// can reuse this replica's plans after a routing rebalance.
func (s *Server) runV2(ctx context.Context, job planJob) ([]byte, int) {
	body, code := s.runStrategy(ctx, job, func(env PlanEnvelope) []byte { return encodeJSON(env) })
	if code == http.StatusOK {
		s.storeEnvelope(job, body)
	}
	return body, code
}

// decodeRequest decodes a JSON request body with the shared size limit,
// answering 400 on malformed input.
func decodeRequest(w http.ResponseWriter, r *http.Request, out any, met *metrics) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(r.Body).Decode(out); err != nil {
		met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

// handlePlanV2 serves POST /v2/plan: validate the strategy name against the
// table, then admit, batch, and respond like the v1 routes.
func (s *Server) handlePlanV2(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeRequest(w, r, &req, &s.met) {
		return
	}
	// Strategy names are case-insensitive, like the facade registry.
	req.Strategy = strings.ToLower(req.Strategy)
	if req.Strategy == "" {
		req.Strategy = "flexsp"
	}
	if req.MaxCtx < 0 {
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("negative maxCtx %d", req.MaxCtx))
		return
	}
	if _, ok := s.strategies[req.Strategy]; !ok {
		s.met.errors.Add(1)
		if req.Strategy == "pipeline" {
			writeError(w, http.StatusNotImplemented, "pipelined planning not configured")
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown strategy %q (known: %s)",
			req.Strategy, strings.Join(s.StrategyNames(), ", ")))
		return
	}
	s.servePlan(w, r, s.v2,
		planJob{lens: req.Lengths, strategy: req.Strategy, maxCtx: req.MaxCtx, explain: req.Explain},
		req.Tenant)
}

// servePlan is the shared plan route tail: validate lengths, admit, open the
// request trace, batch, respond. The request ID (client-supplied
// X-Flexsp-Request-Id or freshly minted) and the trace ID echo back as
// response headers; the completed trace lands in the ring behind
// GET /v2/trace/{id}.
func (s *Server) servePlan(w http.ResponseWriter, r *http.Request, b *batcher, job planJob, tenant string) {
	for _, l := range job.lens {
		if l <= 0 {
			s.met.errors.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Sprintf("non-positive sequence length %d", l))
			return
		}
	}

	release, status, msg := s.admit(tenant)
	if status != 0 {
		writeError(w, status, msg)
		return
	}
	defer release()
	s.met.requests.Add(1)

	ctx := r.Context()
	rid := r.Header.Get("X-Flexsp-Request-Id")
	if rid == "" {
		rid = obs.NewRequestID()
	}
	ctx = obs.WithRequestID(ctx, rid)
	w.Header().Set("X-Flexsp-Request-Id", rid)

	var tr *obs.Trace
	if s.traces != nil {
		ctx, tr = obs.NewTrace(ctx, "server.request")
		root := tr.Root()
		root.SetAttr("strategy", job.strategy)
		root.SetAttr("seqs", len(job.lens))
		root.SetAttr("request_id", rid)
		if tenant != "" {
			root.SetAttr("tenant", tenant)
		}
		w.Header().Set("X-Flexsp-Trace-Id", tr.ID())
	}

	admitted := time.Now()
	body, code, members, joined, err := b.do(ctx, job)
	elapsed := time.Since(admitted)
	finish := func(code int) {
		if tr != nil {
			root := tr.Root()
			root.SetAttr("status", code)
			root.SetAttr("pass_members", members)
			if joined {
				root.SetAttr("coalesced", true)
			}
			tr.End()
			s.traces.add(tr)
			s.traced.Inc()
		}
		s.logger.Debug("plan request",
			"request_id", rid,
			"strategy", job.strategy,
			"seqs", len(job.lens),
			"tenant", tenant,
			"status", code,
			"coalesced", joined,
			"latency", elapsed)
	}
	if err != nil {
		// The client went away; nothing useful can be written.
		s.met.errors.Add(1)
		finish(statusClientGone)
		return
	}
	if joined {
		s.met.coalesced.Add(1)
	}
	if code/100 != 2 {
		// Errors count per request, not per pass: every member of a failed
		// pass sees the failure.
		s.met.errors.Add(1)
	}
	s.met.observeLatency(elapsed.Seconds())
	finish(code)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Flexsp-Pass-Size", fmt.Sprint(members))
	w.WriteHeader(code)
	w.Write(body)
}

// admit applies drain, queue, and per-tenant admission. A zero status means
// admitted and release must be called; otherwise status/msg describe the
// refusal.
func (s *Server) admit(tenant string) (release func(), status int, msg string) {
	return s.admitAs(tenant, false)
}

// admitAs is admit with a drain bypass: a stream close finishing a session
// that was admitted before Drain may pass allowDrain (the daemon would
// otherwise strand every open session's final solve on SIGTERM). Queue and
// tenant limits still apply.
func (s *Server) admitAs(tenant string, allowDrain bool) (release func(), status int, msg string) {
	if !allowDrain && s.draining.Load() {
		s.met.unavailable.Add(1)
		return nil, http.StatusServiceUnavailable, "server is draining"
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.rejected.Add(1)
		return nil, http.StatusTooManyRequests, "queue full"
	}
	s.tenantMu.Lock()
	if s.tenants[tenant] >= s.cfg.TenantLimit {
		s.tenantMu.Unlock()
		<-s.sem
		s.met.rejected.Add(1)
		return nil, http.StatusTooManyRequests, fmt.Sprintf("tenant %q concurrency limit", tenant)
	}
	s.tenants[tenant]++
	s.tenantMu.Unlock()
	return func() {
		s.tenantMu.Lock()
		s.tenants[tenant]--
		if s.tenants[tenant] == 0 {
			delete(s.tenants, tenant)
		}
		s.tenantMu.Unlock()
		<-s.sem
	}, 0, ""
}

// Metrics returns the daemon's counter snapshot (the /v1/metrics body). The
// cache and solver sections are stabilized snapshots (each re-reads until two
// consecutive reads agree), so the response is point-in-time consistent
// against concurrent solves.
func (s *Server) Metrics() MetricsResponse {
	p50, p99 := s.met.lat.percentiles()
	cache := s.cacheStats()
	return MetricsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Draining:         s.draining.Load(),
		Strategies:       s.StrategyNames(),
		Requests:         s.met.requests.Value(),
		Solves:           s.met.solves.Value(),
		Coalesced:        s.met.coalesced.Value(),
		Rejected:         s.met.rejected.Value(),
		Unavailable:      s.met.unavailable.Value(),
		Errors:           s.met.errors.Value(),
		QueueDepth:       int64(len(s.sem)),
		QueueLimit:       s.cfg.QueueLimit,
		LatencyP50Millis: 1e3 * p50,
		LatencyP99Millis: 1e3 * p99,
		Cache:            cache,
		CacheHitRate:     cache.HitRate(),
		Solver:           s.solverMetrics(),
		Stream:           s.streamMetrics(),
		Topology:         s.topologyMetrics(),
		Calibration:      s.calibrationMetrics(),
	}
}

// calibrationMetrics projects the configured calibration identity into the
// /v1/metrics section.
func (s *Server) calibrationMetrics() CalibrationMetrics {
	c := s.cfg.Calibration
	return CalibrationMetrics{
		Version:          c.Version,
		Source:           c.Source,
		FittedAtUnix:     c.FittedAtUnix,
		StalenessSeconds: c.staleness(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(encodeJSON(s.Metrics()))
}

// handlePrometheus serves the same counters as Prometheus text exposition.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleTraceList serves the ring's trace IDs, newest first.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotImplemented, "request tracing disabled")
		return
	}
	ids := s.traces.list()
	if ids == nil {
		ids = []string{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(encodeJSON(struct {
		Traces []string `json:"traces"`
	}{Traces: ids}))
}

// handleTrace serves one completed request's Chrome-trace JSON, loadable in
// chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotImplemented, "request tracing disabled")
		return
	}
	body, ok := s.traces.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "trace not found (the ring keeps recent requests only)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(encodeJSON(ErrorResponse{Error: msg}))
}

// encodeJSON marshals v, panicking on failure: every wire type here
// marshals by construction.
func encodeJSON(v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		panic("server: encoding response: " + err.Error())
	}
	return append(buf, '\n')
}
