package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flexsp/internal/cluster"
	"flexsp/internal/pipeline"
	"flexsp/internal/solver"
)

// fuzzBodyLimit keeps individual fuzz inputs small enough that the cost is
// the decoder under test, not a multi-megabyte solve.
const fuzzBodyLimit = 64 << 10

// checkWireResponse asserts the daemon's wire invariants on any response: an
// expected status, a JSON body with the trailing-newline convention, and a
// populated error message on every non-2xx answer.
func checkWireResponse(t *testing.T, rec *httptest.ResponseRecorder, allowed ...int) {
	t.Helper()
	ok := false
	for _, s := range allowed {
		if rec.Code == s {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("status %d not in %v; body: %s", rec.Code, allowed, rec.Body.String())
	}
	body := rec.Body.Bytes()
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatalf("status %d: body missing trailing newline: %q", rec.Code, body)
	}
	if rec.Code/100 != 2 {
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Fatalf("status %d: error body is not an ErrorResponse: %q", rec.Code, body)
		}
	} else if !json.Valid(body) {
		t.Fatalf("status %d: body is not valid JSON: %q", rec.Code, body)
	}
}

// FuzzPlanRequestDecode hammers the POST /v2/plan decoder with arbitrary
// bodies: malformed input must answer 400 with a JSON error (never panic,
// never hang the batcher), valid input 200 or 422 (unsolvable batch).
func FuzzPlanRequestDecode(f *testing.F) {
	f.Add([]byte(`{"lengths":[1024,2048,4096]}`))
	f.Add([]byte(`{"lengths":[1024,512],"strategy":"flexsp","maxCtx":4096,"explain":true}`))
	f.Add([]byte(`{"lengths":[1024`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"lengths":"nope"}`))
	f.Add([]byte(`{"lengths":[-5]}`))
	f.Add([]byte(`{"lengths":[0]}`))
	f.Add([]byte(`{"lengths":[1024],"strategy":"warp"}`))
	f.Add([]byte(`{"lengths":[1024],"maxCtx":-1}`))
	f.Add([]byte(`{"lengths":[9007199254740993]}`))

	s, err := New(Config{Solver: testSolver(), Joint: pipeline.NewPlanner(testCoeffs()), BatchWindow: -1})
	if err != nil {
		f.Fatal(err)
	}
	defer s.Close()

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > fuzzBodyLimit {
			t.Skip("oversized input")
		}
		// Pre-screen well-formed requests that would be expensive rather than
		// revealing: the solver's cost is the batch's, not the decoder's.
		var req PlanRequest
		if json.Unmarshal(body, &req) == nil {
			if len(req.Lengths) > 32 {
				t.Skip("large valid batch")
			}
			for _, l := range req.Lengths {
				if l > 16<<20 {
					t.Skip("huge sequence length")
				}
			}
		}
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest(http.MethodPost, "/v2/plan", strings.NewReader(string(body)))
		hr.Header.Set("Content-Type", "application/json")
		s.ServeHTTP(rec, hr)
		checkWireResponse(t, rec,
			http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusNotImplemented)
	})
}

// FuzzTopologyEventDecode hammers the POST /v2/topology decoder: malformed
// bodies and invalid event batches must answer 400 with a JSON error, valid
// batches 200 — and nothing may panic the daemon. Each iteration gets a
// fresh elastic fleet (events mutate topology state) with a stub Rebuild, so
// the fuzzer pays for the decoder and Apply, not for replanning.
func FuzzTopologyEventDecode(f *testing.F) {
	f.Add([]byte(`{"events":[{"kind":"node_down","node":0}]}`))
	f.Add([]byte(`{"events":[{"kind":"node_up","node":1}]}`))
	f.Add([]byte(`{"events":[{"kind":"straggle","node":0,"factor":1.5}]}`))
	f.Add([]byte(`{"events":[{"kind":"node_join","class":"A100-40G","count":1}]}`))
	f.Add([]byte(`{"events":[]}`))
	f.Add([]byte(`{"events":[{"kind":"meltdown"}]}`))
	f.Add([]byte(`{"events":[{"kind":"node_down","node":-1}]}`))
	f.Add([]byte(`{"events":[{"kind":"node_down","node":999}]}`))
	f.Add([]byte(`{"events":`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))

	sv := testSolver()
	jp := pipeline.NewPlanner(testCoeffs())
	stubRebuild := func(cluster.Snapshot) (*solver.Solver, *pipeline.Planner, error) {
		return sv, jp, nil
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > fuzzBodyLimit {
			t.Skip("oversized input")
		}
		var req TopologyRequest
		if json.Unmarshal(body, &req) == nil && len(req.Events) > 16 {
			t.Skip("large valid event batch")
		}
		m, err := cluster.MixedCluster(cluster.ClassCount{Class: cluster.A100_40G, Devices: 16})
		if err != nil {
			t.Fatal(err)
		}
		e, err := cluster.NewElastic(m)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Solver: sv, Joint: jp, Topology: e, Rebuild: stubRebuild, BatchWindow: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		rec := httptest.NewRecorder()
		hr := httptest.NewRequest(http.MethodPost, "/v2/topology", strings.NewReader(string(body)))
		hr.Header.Set("Content-Type", "application/json")
		s.ServeHTTP(rec, hr)
		checkWireResponse(t, rec, http.StatusOK, http.StatusBadRequest)
	})
}
