package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flexsp/internal/obs"
	"flexsp/internal/solver"
)

var updateMetricsGolden = flag.Bool("update-metrics-golden", false,
	"rewrite testdata/metrics_v1.golden from the current MetricsResponse encoding")

// TestMetricsJSONGolden pins the /v1/metrics wire format byte for byte: a
// fully populated MetricsResponse must marshal exactly as the checked-in
// golden. Renaming a field, changing its order, or altering a nested snapshot
// type breaks this test before it breaks a dashboard.
func TestMetricsJSONGolden(t *testing.T) {
	m := MetricsResponse{
		UptimeSeconds:    12.5,
		Draining:         true,
		Strategies:       []string{"flexsp", "pipeline"},
		Requests:         100,
		Solves:           40,
		Coalesced:        35,
		Rejected:         10,
		Unavailable:      5,
		Errors:           2,
		QueueDepth:       3,
		QueueLimit:       64,
		LatencyP50Millis: 1.5,
		LatencyP99Millis: 20.25,
		Cache:            solver.CacheStats{Hits: 30, Misses: 10, Dedups: 4, Evictions: 1, Entries: 9},
		CacheHitRate:     0.75,
		Solver:           solver.SolverMetrics{Solves: 40, Canceled: 1, Planned: 80, Deduped: 6, Skipped: 3},
		Stream: StreamMetrics{Opened: 7, Open: 2, Expired: 1, Speculations: 12,
			Skipped: 3, Superseded: 4, Reused: 5},
		Topology: TopologyMetrics{Elastic: true, Version: 6, PlanVersion: 5,
			Degraded: true, Nodes: 4, Down: 1, Straggling: 1,
			Events: 8, Replans: 4, ColdReplans: 1, DegradedPlans: 2},
		Calibration: CalibrationMetrics{Version: 3, Source: "sim-grid",
			FittedAtUnix: 1754524800, StalenessSeconds: 3600.5},
	}
	got, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "metrics_v1.golden")
	if *updateMetricsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-metrics-golden to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("/v1/metrics encoding changed (run with -update-metrics-golden if intended):\n got %s\nwant %s", got, want)
	}
}

// TestPrometheusEndpoint pins the text exposition: GET /metrics parses as
// Prometheus 0.0.4 text and carries the daemon's core series with values that
// match the JSON counters.
func TestPrometheusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postSolve(t, ts.URL, SolveRequest{Lengths: testBatch})
	postSolve(t, ts.URL, SolveRequest{Lengths: testBatch})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics is not valid Prometheus text: %v", err)
	}
	byName := map[string]obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	core := []string{
		"flexsp_requests_total", "flexsp_solves_total", "flexsp_coalesced_total",
		"flexsp_rejected_total", "flexsp_unavailable_total", "flexsp_errors_total",
		"flexsp_request_latency_seconds", "flexsp_uptime_seconds", "flexsp_draining",
		"flexsp_queue_depth", "flexsp_queue_limit",
		"flexsp_plan_cache_hits_total", "flexsp_plan_cache_misses_total",
		"flexsp_plan_cache_entries",
		"flexsp_solver_solves_total", "flexsp_solver_planned_total",
		"flexsp_traces_recorded_total",
		"flexsp_calibration_version", "flexsp_calibration_staleness_seconds",
	}
	for _, name := range core {
		f, ok := byName[name]
		if !ok {
			t.Errorf("core series %s missing from /metrics", name)
			continue
		}
		if f.Help == "" || f.Type == "" {
			t.Errorf("%s missing HELP/TYPE comments", name)
		}
		if len(f.Samples) == 0 {
			t.Errorf("%s has no samples", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	if v := byName["flexsp_requests_total"].Samples[0].Value; v != 2 {
		t.Fatalf("flexsp_requests_total = %v, want 2", v)
	}
	if byName["flexsp_request_latency_seconds"].Type != "histogram" {
		t.Fatalf("latency TYPE = %q, want histogram", byName["flexsp_request_latency_seconds"].Type)
	}
	// The histogram carries the full bucket/sum/count triple and its count
	// agrees with the request counter.
	var count float64
	hasInf := false
	for _, s := range byName["flexsp_request_latency_seconds"].Samples {
		switch s.Name {
		case "flexsp_request_latency_seconds_count":
			count = s.Value
		case "flexsp_request_latency_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				hasInf = true
			}
		}
	}
	if count != 2 || !hasInf {
		t.Fatalf("latency histogram incomplete: count=%v hasInf=%v", count, hasInf)
	}
	if v := byName["flexsp_queue_limit"].Samples[0].Value; v <= 0 {
		t.Fatalf("flexsp_queue_limit = %v", v)
	}
}

// TestTraceEndpoints pins the request-trace ring: a planning request is
// assigned a trace ID (returned in X-Flexsp-Trace-Id), GET /v2/trace lists
// it, and GET /v2/trace/{id} serves Chrome trace_event JSON that covers the
// whole solve path.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body, _ := json.Marshal(SolveRequest{Lengths: testBatch})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Flexsp-Request-Id", "req-under-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rid := resp.Header.Get("X-Flexsp-Request-Id"); rid != "req-under-test" {
		t.Fatalf("request ID not echoed: %q", rid)
	}
	traceID := resp.Header.Get("X-Flexsp-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Flexsp-Trace-Id on response")
	}

	// The ring lists the finished trace, newest first.
	lr, err := http.Get(ts.URL + "/v2/trace")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []string `json:"traces"`
	}
	err = json.NewDecoder(lr.Body).Decode(&list)
	lr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range list.Traces {
		if id == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not in /v2/trace list %v", traceID, list.Traces)
	}

	// The exported trace is Chrome trace_event JSON whose spans cover the
	// request, the solver pass, and the planner underneath it.
	tr, err := http.Get(ts.URL + "/v2/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/trace/%s: status %d: %s", traceID, tr.StatusCode, raw)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace body is not Chrome trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	for _, want := range []string{"server.request", "server.pass", "solver.solve", "solver.trial", "planner.plan"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}

	// Unknown IDs are a 404, not an empty 200.
	nf, err := http.Get(ts.URL + "/v2/trace/nope")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", nf.StatusCode)
	}
}

// TestTracingDisabled pins the opt-out: with a negative TraceEntries the
// trace endpoints answer 501 and responses carry no trace ID.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceEntries: -1})
	resp, body := postSolve(t, ts.URL, SolveRequest{Lengths: testBatch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if id := resp.Header.Get("X-Flexsp-Trace-Id"); id != "" {
		t.Fatalf("tracing disabled but got trace ID %q", id)
	}
	lr, err := http.Get(ts.URL + "/v2/trace")
	if err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if lr.StatusCode != http.StatusNotImplemented {
		t.Fatalf("/v2/trace status %d, want 501", lr.StatusCode)
	}
}

// TestExplainPassCoordinate pins that explain is part of the coalescing key:
// an explain request must not join a plain request's pass (their encoded
// responses differ), while two explain requests still share one.
func TestExplainPassCoordinate(t *testing.T) {
	_, plainKey := planJob{strategy: "flexsp", lens: testBatch}.key()
	_, explainKey := planJob{strategy: "flexsp", lens: testBatch, explain: true}.key()
	if plainKey == explainKey {
		t.Fatal("explain and plain requests share a coalescing key")
	}
	_, again := planJob{strategy: "flexsp", lens: testBatch, explain: true}.key()
	if explainKey != again {
		t.Fatal("identical explain requests do not share a key")
	}
}

// TestMetricsScrapeRace hammers GET /v1/metrics and GET /metrics while
// solves are in flight; run with -race it pins that every snapshot read is
// synchronized with the solver and cache hot paths.
func TestMetricsScrapeRace(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueLimit: 256, TenantLimit: 256, BatchWindow: time.Millisecond})
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, path := range []string{"/v1/metrics", "/metrics"} {
		scrapers.Add(1)
		go func(path string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					continue // server teardown race at test end
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	const perSig, sigs = 8, 4
	var wg sync.WaitGroup
	errs := make(chan string, perSig*sigs)
	for s := 0; s < sigs; s++ {
		for i := 0; i < perSig; i++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				resp, body := postSolve(t, ts.URL, SolveRequest{Lengths: otherBatch(s)})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
				}
			}(s)
		}
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Final scrape still parses and agrees with the JSON view.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var requests float64
	for _, f := range fams {
		if f.Name == "flexsp_requests_total" {
			requests = f.Samples[0].Value
		}
	}
	if requests != perSig*sigs {
		t.Fatalf("flexsp_requests_total = %v, want %d", requests, perSig*sigs)
	}
}
