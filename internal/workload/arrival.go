package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Adversarial arrival distributions for the streaming planner. The standard
// corpora (GitHub, CommonCrawl, Wikipedia) are uni-modal long tails; the
// streaming benchmark additionally stresses speculation with shapes whose
// prefixes look least like the final batch.

// Bimodal is a two-cluster corpus — short chat-style turns plus a distinct
// long-document mode — with almost no mass between the clusters. A random
// prefix can over- or under-represent either mode, so speculative solves on
// partial batches commit to the wrong micro-batch shape more often than on
// uni-modal corpora.
func Bimodal() Dataset {
	return Dataset{
		Name: "Bimodal",
		Mix: []Component{
			{Weight: 0.70, Mu: math.Log(2000), Sigma: 0.45},
			{Weight: 0.30, Mu: math.Log(65000), Sigma: 0.35},
		},
		MinLen: 32,
		MaxLen: 1 << 20,
	}
}

// RLHFRollout models rollout generation in an RLHF loop: a dominant mode of
// short completions, a mid tail of longer reasoning traces, and a rare mode
// of runaway maximum-length generations. The rare long mode means the
// batch's critical path often arrives only near the end of the stream —
// late arrivals that invalidate every earlier incumbent.
func RLHFRollout() Dataset {
	return Dataset{
		Name: "RLHFRollout",
		Mix: []Component{
			{Weight: 0.80, Mu: math.Log(600), Sigma: 0.50},
			{Weight: 0.17, Mu: math.Log(8000), Sigma: 0.90},
			{Weight: 0.03, Mu: math.Log(120000), Sigma: 0.60},
		},
		MinLen: 32,
		MaxLen: 1 << 20,
	}
}

// ArrivalOrder is the order sequences of a batch arrive on a stream.
type ArrivalOrder string

const (
	// OrderShuffled is a uniform random permutation — the realistic case of
	// sequences landing as independent producers finish them.
	OrderShuffled ArrivalOrder = "shuffled"
	// OrderAscending delivers shortest-first. This is the worst case for
	// speculation: every prefix under-represents the tail, so each longer
	// arrival shifts the optimal micro-batch partition and the incumbent
	// built so far keeps going stale.
	OrderAscending ArrivalOrder = "ascending"
	// OrderDescending delivers longest-first: prefixes contain the critical
	// path early, the friendliest case for speculation.
	OrderDescending ArrivalOrder = "descending"
)

// ArrivalOrders lists the benchmark orders, realistic first.
func ArrivalOrders() []ArrivalOrder {
	return []ArrivalOrder{OrderShuffled, OrderAscending, OrderDescending}
}

// Arrival returns a copy of lens in the given arrival order; rng is used
// only by OrderShuffled. The input is never mutated.
func Arrival(lens []int, order ArrivalOrder, rng *rand.Rand) []int {
	out := make([]int, len(lens))
	copy(out, lens)
	switch order {
	case OrderAscending:
		sort.Ints(out)
	case OrderDescending:
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
	default:
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}
