package planner

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/workload"
)

func coeffs(n int) costmodel.Coeffs {
	return costmodel.Profile(costmodel.GPT7B, cluster.A100Cluster(n))
}

func TestPlanEmptyBatch(t *testing.T) {
	pl := New(coeffs(64))
	p, err := pl.Plan(nil)
	if err != nil || len(p.Groups) != 0 {
		t.Fatalf("empty plan = %+v, err %v", p, err)
	}
}

// The Fig. 1 motivating example: 1×100K + 4×48K sequences on 64 devices. The
// heterogeneity-adaptive plan must put the 100K sequence into a large group
// (SP≥16) and the 48K sequences into smaller groups (SP≤16), and beat the
// homogeneous SP=32 layout.
func TestFig1HeterogeneousBeatsHomogeneous(t *testing.T) {
	c := coeffs(64)
	pl := New(c)
	lens := []int{100 << 10, 48 << 10, 48 << 10, 48 << 10, 48 << 10}

	hetero, err := pl.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetero.Validate(c, lens); err != nil {
		t.Fatal(err)
	}
	homo, err := pl.PlanFixedDegree(lens, 32)
	if err != nil {
		t.Fatal(err)
	}
	if hetero.Time >= homo.Time {
		t.Fatalf("hetero %.3fs should beat homo SP=32 %.3fs\nhetero: %v\nhomo: %v",
			hetero.Time, homo.Time, hetero.Groups, homo.Groups)
	}
	// The long sequence needs a large group; the short ones should get
	// smaller groups than a homogeneous layout would force.
	for _, g := range hetero.Groups {
		for _, l := range g.Lens {
			if l == 100<<10 && g.Degree < 16 {
				t.Fatalf("100K sequence placed on SP=%d (< min feasible 16)", g.Degree)
			}
		}
	}
	var sawSmall bool
	for _, g := range hetero.Groups {
		if g.Degree <= 16 && len(g.Lens) > 0 {
			sawSmall = true
		}
	}
	if !sawSmall {
		t.Fatalf("expected some short sequences on small groups: %v", hetero.Groups)
	}
}

func TestPlanValidatesOnRealBatches(t *testing.T) {
	c := coeffs(64)
	pl := New(c)
	rng := rand.New(rand.NewSource(4))
	for _, d := range workload.Datasets() {
		// Micro-batch-sized samples (a full 512 batch exceeds memory).
		lens := d.Batch(rng, 60, 192<<10)
		p, err := pl.Plan(lens)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if err := p.Validate(c, lens); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if p.Time <= 0 {
			t.Fatalf("%s: non-positive makespan", d.Name)
		}
	}
}

func TestPlanInfeasibleWhenTooLong(t *testing.T) {
	c := coeffs(8) // 8 devices cannot hold a 384K sequence
	pl := New(c)
	if _, err := pl.Plan([]int{384 << 10}); err == nil {
		t.Fatal("expected infeasibility")
	}
}

// The enumerative plan must never be worse than the best homogeneous plan —
// homogeneous configurations are in its search space.
func TestEnumDominatesHomogeneous(t *testing.T) {
	c := coeffs(64)
	pl := New(c)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		lens := workload.CommonCrawl().Batch(rng, 50, 192<<10)
		hetero, err := pl.Plan(lens)
		if err != nil {
			t.Fatal(err)
		}
		homo, err := pl.PlanHomogeneous(lens)
		if err != nil {
			t.Fatal(err)
		}
		if hetero.Time > homo.Time*1.001 {
			t.Fatalf("trial %d: enum %.3fs worse than homogeneous %.3fs",
				trial, hetero.Time, homo.Time)
		}
	}
}

// Takeaway (§1): the greedy smallest-group assignment creates bottlenecks;
// the balanced planner should beat it on skewed batches.
func TestEnumBeatsGreedyOnSkewedBatch(t *testing.T) {
	c := coeffs(64)
	pl := New(c)
	rng := rand.New(rand.NewSource(3))
	lens := workload.GitHub().Batch(rng, 64, 128<<10)
	enum, err := pl.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	greedy := &Planner{Coeffs: c, Strategy: StrategyGreedy, Q: 16}
	gp, err := greedy.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	if err := gp.Validate(c, lens); err != nil {
		t.Fatal(err)
	}
	if enum.Time > gp.Time {
		t.Fatalf("enum %.3fs should not lose to greedy %.3fs", enum.Time, gp.Time)
	}
}

// MILP strategy on a small cluster: must be valid and at least as good as
// enum (it is warm-started with the enum plan).
func TestMILPPlanSmallCluster(t *testing.T) {
	c := coeffs(8)
	enum := New(c)
	milpPl := &Planner{Coeffs: c, Strategy: StrategyMILP, Q: 6, MILPTimeLimit: 1500 * time.Millisecond}
	// Keep the batch small: on 8 GPUs the ZeRO-3 states of GPT-7B leave
	// only ~4K tokens of activation headroom per device.
	rng := rand.New(rand.NewSource(21))
	lens := workload.Wikipedia().Batch(rng, 8, 4<<10)

	ep, err := enum.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := milpPl.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Validate(c, lens); err != nil {
		t.Fatal(err)
	}
	if mp.Time > ep.Time*1.01 {
		t.Fatalf("MILP %.4fs worse than its own warm start %.4fs", mp.Time, ep.Time)
	}
}

func TestPlanDeviceBudgetRespected(t *testing.T) {
	c := coeffs(64)
	pl := New(c)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		lens := workload.CommonCrawl().Batch(rng, 30+rng.Intn(40), 384<<10)
		p, err := pl.Plan(lens)
		if err != nil {
			continue // occasionally infeasible with huge sequences; fine
		}
		if p.DevicesUsed() > 64 {
			t.Fatalf("plan uses %d devices", p.DevicesUsed())
		}
		if err := p.Validate(c, lens); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnumeratePartitionsCount(t *testing.T) {
	count := func(n, minFirst int) int {
		c := 0
		enumeratePartitions(n, n, minFirst, func([]int) { c++ })
		return c
	}
	// Binary partitions of small n (OEIS A018819): 1,2,4,6,10,14,20,26,36,46...
	wants := map[int]int{1: 1, 2: 2, 4: 4, 8: 10, 16: 36}
	for n, want := range wants {
		if got := count(n, 1); got != want {
			t.Errorf("partitions(%d) = %d, want %d", n, got, want)
		}
	}
	// Pruning by minFirst strictly reduces the count.
	if count(16, 8) >= count(16, 1) {
		t.Error("minFirst pruning had no effect")
	}
	// Every partition must contain a part ≥ minFirst and sum to n.
	enumeratePartitions(16, 16, 4, func(parts []int) {
		sum, maxP := 0, 0
		for _, p := range parts {
			sum += p
			if p > maxP {
				maxP = p
			}
		}
		if sum != 16 || maxP < 4 {
			t.Errorf("bad partition %v", parts)
		}
	})
}

func TestSearchConfigsLargeN(t *testing.T) {
	cfgs := searchConfigs(1024, 32, 1024)
	if len(cfgs) == 0 {
		t.Fatal("no configurations for N=1024")
	}
	for _, cfg := range cfgs {
		sum, maxP := 0, 0
		for _, d := range cfg {
			sum += d
			if d > maxP {
				maxP = d
			}
		}
		if sum != 1024 {
			t.Fatalf("config %v sums to %d", cfg, sum)
		}
		if maxP < 32 {
			t.Fatalf("config %v lacks a group ≥ 32", cfg)
		}
	}
}

func TestPlanLargeCluster(t *testing.T) {
	c := coeffs(128)
	pl := New(c)
	rng := rand.New(rand.NewSource(15))
	lens := workload.CommonCrawl().Batch(rng, 80, 128<<10)
	p, err := pl.Plan(lens)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(c, lens); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyEnum.String() != "enum" || StrategyMILP.String() != "milp" ||
		StrategyGreedy.String() != "greedy" || Strategy(7).String() == "" {
		t.Fatal("Strategy.String mismatch")
	}
}

func TestMicroPlanAccessors(t *testing.T) {
	p := MicroPlan{Groups: []Group{
		{Degree: 32, Lens: []int{1000}},
		{Degree: 8, Lens: []int{10, 20}},
		{Degree: 4, Lens: nil},
	}}
	ds := p.Degrees()
	if len(ds) != 2 || ds[0] != 32 || ds[1] != 8 {
		t.Fatalf("Degrees = %v", ds)
	}
	if p.DevicesUsed() != 40 {
		t.Fatalf("DevicesUsed = %d", p.DevicesUsed())
	}
	if (Group{Degree: 8, Lens: []int{5, 7}}).Tokens() != 12 {
		t.Fatal("Tokens mismatch")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	c := coeffs(64)
	lens := []int{1000, 2000}
	good := MicroPlan{Groups: []Group{{Degree: 8, Lens: []int{1000, 2000}}}}
	if err := good.Validate(c, lens); err != nil {
		t.Fatal(err)
	}
	over := MicroPlan{Groups: []Group{
		{Degree: 64, Lens: []int{1000}},
		{Degree: 64, Lens: []int{2000}},
	}}
	if over.Validate(c, lens) == nil {
		t.Error("device oversubscription accepted")
	}
	missing := MicroPlan{Groups: []Group{{Degree: 8, Lens: []int{1000}}}}
	if missing.Validate(c, lens) == nil {
		t.Error("missing sequence accepted")
	}
	oom := MicroPlan{Groups: []Group{{Degree: 1, Lens: []int{1 << 20}}}}
	if oom.Validate(c, []int{1 << 20}) == nil {
		t.Error("OOM group accepted")
	}
}

// The assignment's inlined hot-path cost must equal the cost model's
// GroupTimeSums for both communication styles.
func TestAssignmentTimeMatchesCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, style := range []costmodel.CommStyle{costmodel.StyleUlysses, costmodel.StyleRingCP} {
		c := coeffs(64).WithStyle(style)
		degrees := []int{32, 16, 8, 4, 2, 1}
		a := newAssignment(c, degrees)
		for i := 0; i < 40; i++ {
			g := rng.Intn(len(degrees))
			it := item{rep: 256 + rng.Intn(8<<10)}
			it.actual = it.rep
			if a.fits(g, it) {
				a.add(g, it)
			}
		}
		for g := range degrees {
			got := a.groupTime(g)
			want := c.GroupTimeSums(a.sumS[g], a.sumS2[g], degrees[g])
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("style %v group %d: inline %.12f != GroupTimeSums %.12f",
					style, g, got, want)
			}
		}
	}
}

// On tiny instances, the enumerative plan must match the brute-force optimum
// over all configurations × assignments (exhaustive search).
func TestEnumOptimalOnTinyInstances(t *testing.T) {
	c := coeffs(8)
	pl := New(c)
	pl.Q = 64 // no bucketing coarsening at this size
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(3)
		lens := make([]int, n)
		for i := range lens {
			lens[i] = 512 + rng.Intn(3<<10)
		}
		got, err := pl.Plan(lens)
		if err != nil {
			t.Fatal(err)
		}
		best := bruteForcePlan(c, lens, 8)
		if got.Time > best*1.02+1e-9 {
			t.Fatalf("trial %d: enum %.4f vs brute force %.4f (lens %v)",
				trial, got.Time, best, lens)
		}
	}
}

// bruteForcePlan exhaustively tries every degree multiset and every
// assignment of sequences to groups, returning the optimal makespan.
func bruteForcePlan(c costmodel.Coeffs, lens []int, devices int) float64 {
	best := math.Inf(1)
	var configs [][]int
	var rec func(remaining, maxP int, cur []int)
	rec = func(remaining, maxP int, cur []int) {
		if remaining == 0 {
			configs = append(configs, append([]int(nil), cur...))
			return
		}
		for d := maxP; d >= 1; d /= 2 {
			if d > remaining {
				continue
			}
			rec(remaining-d, d, append(cur, d))
		}
	}
	rec(devices, devices, nil)
	for _, cfg := range configs {
		assignLens := make([][]int, len(cfg))
		var tryAssign func(i int)
		tryAssign = func(i int) {
			if i == len(lens) {
				span := 0.0
				ok := true
				for g, gl := range assignLens {
					if len(gl) == 0 {
						continue
					}
					if !c.Fits(gl, cfg[g]) {
						ok = false
						break
					}
					if tm := c.GroupTime(gl, cfg[g]); tm > span {
						span = tm
					}
				}
				if ok && span < best {
					best = span
				}
				return
			}
			for g := range cfg {
				assignLens[g] = append(assignLens[g], lens[i])
				tryAssign(i + 1)
				assignLens[g] = assignLens[g][:len(assignLens[g])-1]
			}
		}
		tryAssign(0)
	}
	return best
}
