package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestAdversarialDatasetsValidate(t *testing.T) {
	for _, d := range []Dataset{Bimodal(), RLHFRollout()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// TestBimodalHasTwoModes checks the defining property: substantial mass on
// both sides of the inter-cluster gap, near-nothing inside it.
func TestBimodalHasTwoModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Bimodal()
	const n = 20000
	short, gap, long := 0, 0, 0
	for i := 0; i < n; i++ {
		switch l := d.Sample(rng); {
		case l <= 8<<10:
			short++
		case l <= 32<<10:
			gap++
		default:
			long++
		}
	}
	if f := float64(short) / n; f < 0.55 || f > 0.85 {
		t.Errorf("short-mode fraction %.3f, want ~0.70", f)
	}
	if f := float64(long) / n; f < 0.15 {
		t.Errorf("long-mode fraction %.3f, want ≥ 0.15", f)
	}
	if f := float64(gap) / n; f > 0.15 {
		t.Errorf("inter-mode gap fraction %.3f, want sparse", f)
	}
}

// TestRLHFRolloutLongTail checks that the rollout mix is dominated by short
// completions but keeps a rare very-long mode.
func TestRLHFRolloutLongTail(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := RLHFRollout()
	const n = 20000
	if f := d.FractionBelow(rng, 4<<10, n); f < 0.70 {
		t.Errorf("fraction below 4K = %.3f, want ≥ 0.70", f)
	}
	if f := 1 - d.FractionBelow(rng, 64<<10, n); f < 0.005 || f > 0.10 {
		t.Errorf("fraction above 64K = %.4f, want a rare but present mode", f)
	}
}

func TestArrivalOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lens := CommonCrawl().SampleN(rng, 256)
	orig := append([]int(nil), lens...)

	for _, order := range ArrivalOrders() {
		got := Arrival(lens, order, rand.New(rand.NewSource(3)))
		if len(got) != len(lens) {
			t.Fatalf("%s: length %d, want %d", order, len(got), len(lens))
		}
		// Same multiset regardless of order.
		a, b := append([]int(nil), got...), append([]int(nil), lens...)
		sort.Ints(a)
		sort.Ints(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: multiset changed at %d: %d != %d", order, i, a[i], b[i])
			}
		}
	}
	for i := range lens {
		if lens[i] != orig[i] {
			t.Fatal("Arrival mutated its input")
		}
	}

	asc := Arrival(lens, OrderAscending, nil)
	if !sort.IntsAreSorted(asc) {
		t.Error("ascending order not sorted")
	}
	desc := Arrival(lens, OrderDescending, nil)
	if !sort.IsSorted(sort.Reverse(sort.IntSlice(desc))) {
		t.Error("descending order not sorted")
	}
	s1 := Arrival(lens, OrderShuffled, rand.New(rand.NewSource(3)))
	s2 := Arrival(lens, OrderShuffled, rand.New(rand.NewSource(3)))
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("shuffled order not deterministic for a fixed seed")
		}
	}
}
