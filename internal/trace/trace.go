// Package trace records structured per-iteration training telemetry — the
// measurements behind the paper's evaluation — as JSON Lines, and computes
// the summary statistics the tables report (mean iteration time after
// warm-up, All-to-All share, solver latency percentiles).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Iteration is one training step's record.
type Iteration struct {
	Iter int `json:"iter"`
	// Tokens is the batch's total token count.
	Tokens int `json:"tokens"`
	// Seqs is the batch's sequence count.
	Seqs int `json:"seqs"`
	// MicroBatches is the chosen gradient-accumulation depth.
	MicroBatches int `json:"microBatches"`
	// Groups is the flattened degree multiset of the first micro-batch.
	Groups []int `json:"groups,omitempty"`
	// EstSeconds is the solver's estimate; ExecSeconds the executed time.
	EstSeconds  float64 `json:"estSeconds"`
	ExecSeconds float64 `json:"execSeconds"`
	// AllToAllSeconds is the critical-path All-to-All time.
	AllToAllSeconds float64 `json:"allToAllSeconds"`
	// SolveSeconds is the wall-clock solver latency.
	SolveSeconds float64 `json:"solveSeconds"`
	// PeakMemFrac is the peak device-memory fraction.
	PeakMemFrac float64 `json:"peakMemFrac"`
}

// Recorder streams iteration records to a writer as JSON Lines and keeps
// them for summarization.
type Recorder struct {
	w     io.Writer
	enc   *json.Encoder
	iters []Iteration
}

// NewRecorder writes to w (pass nil to only keep records in memory).
func NewRecorder(w io.Writer) *Recorder {
	r := &Recorder{w: w}
	if w != nil {
		r.enc = json.NewEncoder(w)
	}
	return r
}

// Record appends one iteration.
func (r *Recorder) Record(it Iteration) error {
	r.iters = append(r.iters, it)
	if r.enc != nil {
		return r.enc.Encode(it)
	}
	return nil
}

// Iterations returns the recorded iterations.
func (r *Recorder) Iterations() []Iteration { return r.iters }

// Summary aggregates recorded iterations.
type Summary struct {
	Iterations int `json:"iterations"`
	// Warmup is the number of leading iterations excluded (paper protocol).
	Warmup          int     `json:"warmup"`
	MeanExecSeconds float64 `json:"meanExecSeconds"`
	MeanEstSeconds  float64 `json:"meanEstSeconds"`
	// EstimateError is mean |est − exec| / exec (the Fig. 9 quantity).
	EstimateError float64 `json:"estimateError"`
	AllToAllShare float64 `json:"allToAllShare"`
	TokensPerSec  float64 `json:"tokensPerSec"`
	SolveP50      float64 `json:"solveP50Seconds"`
	SolveP95      float64 `json:"solveP95Seconds"`
}

// Summarize aggregates, excluding the first `warmup` iterations (the paper
// averages 40 iterations after a 10-iteration warm-up).
func (r *Recorder) Summarize(warmup int) (Summary, error) {
	if warmup < 0 {
		warmup = 0
	}
	if warmup >= len(r.iters) {
		return Summary{}, fmt.Errorf("trace: warmup %d leaves no iterations of %d", warmup, len(r.iters))
	}
	iters := r.iters[warmup:]
	s := Summary{Iterations: len(iters), Warmup: warmup}
	var exec, est, a2a, tokens, errAcc float64
	var solves []float64
	for _, it := range iters {
		exec += it.ExecSeconds
		est += it.EstSeconds
		a2a += it.AllToAllSeconds
		tokens += float64(it.Tokens)
		if it.ExecSeconds > 0 {
			errAcc += math.Abs(it.EstSeconds-it.ExecSeconds) / it.ExecSeconds
		}
		solves = append(solves, it.SolveSeconds)
	}
	n := float64(len(iters))
	s.MeanExecSeconds = exec / n
	s.MeanEstSeconds = est / n
	s.EstimateError = errAcc / n
	if exec > 0 {
		s.AllToAllShare = a2a / exec
		s.TokensPerSec = tokens / exec
	}
	sort.Float64s(solves)
	s.SolveP50 = percentile(solves, 0.50)
	s.SolveP95 = percentile(solves, 0.95)
	return s, nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Read parses a JSONL trace back into iterations.
func Read(r io.Reader) ([]Iteration, error) {
	dec := json.NewDecoder(r)
	var out []Iteration
	for {
		var it Iteration
		if err := dec.Decode(&it); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: decoding record %d: %w", len(out), err)
		}
		out = append(out, it)
	}
}
