// Command flexsp-solve runs the FlexSP solver (paper Alg. 1) on one data
// batch and emits the parallelism plan as JSON. Input is a JSON object on
// stdin (or -in file):
//
//	{"devices": 64, "model": "GPT-7B", "lengths": [102400, 49152, ...]}
//
// Output is the chosen micro-batch plans, one SP-group list per micro-batch,
// with the estimated times:
//
//	{"m": 2, "estTime": 7.31, "micro": [{"time": 3.6, "groups": [
//	    {"degree": 32, "lengths": [...]}, ...]}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/planner"
	"flexsp/internal/solver"
)

type input struct {
	Devices  int    `json:"devices"`
	Model    string `json:"model"`
	Strategy string `json:"strategy"`
	Lengths  []int  `json:"lengths"`
}

type outGroup struct {
	Degree  int   `json:"degree"`
	Lengths []int `json:"lengths"`
}

type outMicro struct {
	Time   float64    `json:"time"`
	Groups []outGroup `json:"groups"`
}

type output struct {
	M         int        `json:"m"`
	MMin      int        `json:"mMin"`
	EstTime   float64    `json:"estTime"`
	SolveWall float64    `json:"solveWallSeconds"`
	Micro     []outMicro `json:"micro"`
}

func main() {
	inPath := flag.String("in", "-", "input JSON file ('-' = stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var in input
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		fatal(fmt.Errorf("decoding input: %w", err))
	}
	if in.Devices == 0 {
		in.Devices = 64
	}
	topo, err := cluster.NewA100Cluster(in.Devices)
	if err != nil {
		fatal(fmt.Errorf("invalid \"devices\": %w", err))
	}
	model := costmodel.GPT7B
	for _, m := range costmodel.Models() {
		if m.Name == in.Model {
			model = m
		}
	}
	coeffs := costmodel.Profile(model, topo)
	pl := planner.New(coeffs)
	switch in.Strategy {
	case "milp":
		pl.Strategy = planner.StrategyMILP
	case "greedy":
		pl.Strategy = planner.StrategyGreedy
	}
	res, err := solver.New(pl).Solve(in.Lengths)
	if err != nil {
		fatal(err)
	}

	out := output{M: res.M, MMin: res.MMin, EstTime: res.Time,
		SolveWall: res.SolveWall.Seconds()}
	for _, mp := range res.Plans {
		om := outMicro{Time: mp.Time}
		for _, g := range mp.Groups {
			om.Groups = append(om.Groups, outGroup{Degree: g.Degree, Lengths: g.Lens})
		}
		out.Micro = append(out.Micro, om)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexsp-solve:", err)
	os.Exit(1)
}
