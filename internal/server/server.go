// Package server turns the FlexSP solver into a long-lived HTTP/JSON
// planning daemon — the solver-as-a-service deployment of paper §5, where
// sequence-parallel planning is disaggregated from training and runs ahead
// of each step as a standalone, multi-tenant component.
//
// The daemon speaks a versioned wire protocol over a solver.Solver, the
// joint PP×SP pipeline.Planner, and any extra named strategies supplied by
// the facade:
//
//	POST /v2/plan             {"strategy","lengths","maxCtx","tenant"} →
//	                          tagged plan envelope (version, strategy,
//	                          flat | pipelined | megatron section)
//	POST /v1/solve            v1 shim: the flexsp strategy, flat section
//	                          only — byte-identical to the v1 protocol
//	POST /v1/solve/pipelined  v1 shim: the pipeline strategy
//	GET  /v1/metrics          cache/dedup counters, queue depth, p50/p99
//	GET  /healthz             liveness (503 while draining)
//
// Three layers keep it standing under heavy traffic: admission control (a
// bounded queue plus per-tenant concurrency limits, overflow answered with
// 429), request batching (compatible requests — same lengths, strategy and
// maxCtx — arriving within a short window coalesce into one solver pass and
// share one pre-encoded response), and the solver's sharded PlanCache
// (repeated length signatures skip planning entirely). Drain() plus
// http.Server.Shutdown give a graceful SIGTERM: in-flight solves complete,
// new work is refused with 503.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexsp/internal/pipeline"
	"flexsp/internal/solver"
)

// StrategyFunc produces one named strategy's tagged plan envelope for POST
// /v2/plan. The facade registers its strategy registry here; the flexsp and
// pipeline strategies are built in (they run on the server's own solver and
// joint planner, shared with the v1 shims).
type StrategyFunc func(ctx context.Context, lengths []int, maxCtx int) (PlanEnvelope, error)

// Config configures a Server.
type Config struct {
	// Solver handles the flexsp strategy (and the /v1/solve shim);
	// required. If it has no PlanCache one is attached (sized by
	// CacheEntries/CacheGranularity), so repeated signatures always hit.
	Solver *solver.Solver
	// CacheEntries and CacheGranularity size the plan cache attached when
	// Solver arrives without one (defaults 1024 entries, 256-token
	// rounding); they are ignored for a solver that already has a cache.
	CacheEntries, CacheGranularity int
	// Joint handles the pipeline strategy (and the /v1/solve/pipelined
	// shim); nil answers those with 501.
	Joint *pipeline.Planner
	// Strategies adds extra named strategies to POST /v2/plan (the facade
	// passes its registry: deepspeed, batchada, megatron, plus any custom
	// registrations). Entries named "flexsp" or "pipeline" are ignored —
	// the built-ins own those names.
	Strategies map[string]StrategyFunc
	// QueueLimit bounds admitted requests (waiting in a batching window or
	// solving); overflow is answered with 429. Default 64.
	QueueLimit int
	// TenantLimit bounds concurrently admitted requests per tenant label
	// (the empty tenant is one shared bucket). Default 16.
	TenantLimit int
	// BatchWindow is how long the first request for a signature waits for
	// compatible requests to coalesce with before solving. Zero takes the
	// 2ms default; negative disables the wait, leaving pure singleflight
	// (no added latency, but only requests overlapping an in-flight solve
	// coalesce).
	BatchWindow time.Duration
}

// Server is the planning daemon. It implements http.Handler; wrap it in an
// http.Server (or httptest.Server) to serve it.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	solve      *batcher // /v1/solve shim passes
	piped      *batcher // /v1/solve/pipelined shim passes
	v2         *batcher // /v2/plan passes, keyed by (strategy, maxCtx, lengths)
	strategies map[string]StrategyFunc
	start      time.Time

	sem      chan struct{} // admission slots; len(sem) is the queue depth
	draining atomic.Bool

	tenantMu sync.Mutex
	tenants  map[string]int

	met metrics
}

// New builds a Server. A nil cfg.Solver is a configuration error and is
// returned as one, not panicked on.
func New(cfg Config) (*Server, error) {
	if cfg.Solver == nil {
		return nil, fmt.Errorf("server: Config.Solver is required")
	}
	if cfg.Solver.Cache == nil {
		cfg.Solver.Cache = solver.NewPlanCache(cfg.CacheEntries, cfg.CacheGranularity)
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.TenantLimit <= 0 {
		cfg.TenantLimit = 16
	}
	switch {
	case cfg.BatchWindow == 0:
		cfg.BatchWindow = 2 * time.Millisecond
	case cfg.BatchWindow < 0:
		cfg.BatchWindow = 0
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.QueueLimit),
		tenants: make(map[string]int),
	}
	s.strategies = map[string]StrategyFunc{"flexsp": s.planFlexSP}
	if cfg.Joint != nil {
		s.strategies["pipeline"] = s.planPipelined
	}
	for name, fn := range cfg.Strategies {
		name = strings.ToLower(name)
		if name == "" || name == "flexsp" || name == "pipeline" || fn == nil {
			continue
		}
		s.strategies[name] = fn
	}
	s.solve = newBatcher(cfg.BatchWindow, s.runV1Solve)
	s.piped = newBatcher(cfg.BatchWindow, s.runV1Pipelined)
	s.v2 = newBatcher(cfg.BatchWindow, s.runV2)
	s.mux.HandleFunc("POST /v2/plan", s.handlePlanV2)
	s.mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		var req SolveRequest
		if !decodeRequest(w, r, &req, &s.met) {
			return
		}
		s.servePlan(w, r, s.solve, planJob{lens: req.Lengths, strategy: "flexsp"}, req.Tenant)
	})
	s.mux.HandleFunc("POST /v1/solve/pipelined", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Joint == nil {
			s.met.errors.Add(1)
			writeError(w, http.StatusNotImplemented, "pipelined planning not configured")
			return
		}
		var req SolveRequest
		if !decodeRequest(w, r, &req, &s.met) {
			return
		}
		s.servePlan(w, r, s.piped, planJob{lens: req.Lengths, strategy: "pipeline"}, req.Tenant)
	})
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s, nil
}

// StrategyNames returns the names POST /v2/plan accepts, sorted.
func (s *Server) StrategyNames() []string {
	names := make([]string, 0, len(s.strategies))
	for name := range s.strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ServeHTTP dispatches to the daemon's routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain puts the server into draining mode: /healthz turns 503 (so load
// balancers stop routing here) and new plan requests are refused with 503,
// while requests already admitted run to completion. Pair it with
// http.Server.Shutdown, which waits for in-flight handlers, for a graceful
// SIGTERM.
func (s *Server) Drain() {
	s.draining.Store(true)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	return s.draining.Load()
}

// statusClientGone is nginx's 499 "client closed request": every member of
// the pass disconnected, so the solve was abandoned and nobody reads the
// response. It must be non-zero — status 0 marks an abandoned-before-solve
// pass that joiners retry.
const statusClientGone = 499

// planFlexSP is the built-in flexsp strategy: one SolveContext call on the
// server's solver, wrapped in the v2 envelope. The /v1/solve shim serves
// exactly this envelope's flat section.
func (s *Server) planFlexSP(ctx context.Context, lens []int, maxCtx int) (PlanEnvelope, error) {
	res, err := s.cfg.Solver.SolveContext(ctx, lens)
	if err != nil {
		return PlanEnvelope{}, err
	}
	sr := EncodeResult(res)
	return PlanEnvelope{
		Version:          WireVersion,
		Strategy:         "flexsp",
		EstTime:          sr.EstTime,
		SolveWallSeconds: sr.SolveWallSeconds,
		Flat:             &sr,
	}, nil
}

// planPipelined is the built-in pipeline strategy over the joint PP×SP
// planner; the /v1/solve/pipelined shim serves its pipelined section.
func (s *Server) planPipelined(ctx context.Context, lens []int, maxCtx int) (PlanEnvelope, error) {
	res, err := s.cfg.Joint.SolveContext(ctx, lens)
	if err != nil {
		return PlanEnvelope{}, err
	}
	pr := EncodePipelined(res)
	return PlanEnvelope{
		Version:          WireVersion,
		Strategy:         "pipeline",
		EstTime:          pr.EstTime,
		SolveWallSeconds: pr.SolveWallSeconds,
		Pipelined:        &pr,
	}, nil
}

// runStrategy executes one strategy pass and encodes the body with the given
// encoder (the full envelope for v2, a single section for the v1 shims).
func (s *Server) runStrategy(ctx context.Context, job planJob, encode func(PlanEnvelope) []byte) ([]byte, int) {
	s.met.solves.Add(1)
	fn := s.strategies[job.strategy] // validated before admission
	env, err := fn(ctx, job.lens, job.maxCtx)
	switch {
	case ctx.Err() != nil:
		return encodeJSON(ErrorResponse{Error: "canceled: all requesting clients disconnected"}), statusClientGone
	case err != nil:
		return encodeJSON(ErrorResponse{Error: err.Error()}), http.StatusUnprocessableEntity
	}
	return encode(env), http.StatusOK
}

// runV1Solve is the /v1/solve shim's batcher pass: the flexsp strategy with
// only the envelope's flat section encoded — byte-identical to the v1
// protocol.
func (s *Server) runV1Solve(ctx context.Context, job planJob) ([]byte, int) {
	return s.runStrategy(ctx, job, func(env PlanEnvelope) []byte { return encodeJSON(*env.Flat) })
}

// runV1Pipelined is the /v1/solve/pipelined shim's pass.
func (s *Server) runV1Pipelined(ctx context.Context, job planJob) ([]byte, int) {
	return s.runStrategy(ctx, job, func(env PlanEnvelope) []byte { return encodeJSON(*env.Pipelined) })
}

// runV2 is the /v2/plan pass: the full tagged envelope.
func (s *Server) runV2(ctx context.Context, job planJob) ([]byte, int) {
	return s.runStrategy(ctx, job, func(env PlanEnvelope) []byte { return encodeJSON(env) })
}

// decodeRequest decodes a JSON request body with the shared size limit,
// answering 400 on malformed input.
func decodeRequest(w http.ResponseWriter, r *http.Request, out any, met *metrics) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(r.Body).Decode(out); err != nil {
		met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

// handlePlanV2 serves POST /v2/plan: validate the strategy name against the
// table, then admit, batch, and respond like the v1 routes.
func (s *Server) handlePlanV2(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeRequest(w, r, &req, &s.met) {
		return
	}
	// Strategy names are case-insensitive, like the facade registry.
	req.Strategy = strings.ToLower(req.Strategy)
	if req.Strategy == "" {
		req.Strategy = "flexsp"
	}
	if req.MaxCtx < 0 {
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("negative maxCtx %d", req.MaxCtx))
		return
	}
	if _, ok := s.strategies[req.Strategy]; !ok {
		s.met.errors.Add(1)
		if req.Strategy == "pipeline" {
			writeError(w, http.StatusNotImplemented, "pipelined planning not configured")
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown strategy %q (known: %s)",
			req.Strategy, strings.Join(s.StrategyNames(), ", ")))
		return
	}
	s.servePlan(w, r, s.v2,
		planJob{lens: req.Lengths, strategy: req.Strategy, maxCtx: req.MaxCtx}, req.Tenant)
}

// servePlan is the shared plan route tail: validate lengths, admit, batch,
// respond.
func (s *Server) servePlan(w http.ResponseWriter, r *http.Request, b *batcher, job planJob, tenant string) {
	for _, l := range job.lens {
		if l <= 0 {
			s.met.errors.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Sprintf("non-positive sequence length %d", l))
			return
		}
	}

	release, status, msg := s.admit(tenant)
	if status != 0 {
		writeError(w, status, msg)
		return
	}
	defer release()
	s.met.requests.Add(1)

	admitted := time.Now()
	body, code, members, joined, err := b.do(r.Context(), job)
	if err != nil {
		// The client went away; nothing useful can be written.
		s.met.errors.Add(1)
		return
	}
	if joined {
		s.met.coalesced.Add(1)
	}
	if code/100 != 2 {
		// Errors count per request, not per pass: every member of a failed
		// pass sees the failure.
		s.met.errors.Add(1)
	}
	s.met.lat.observe(time.Since(admitted).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Flexsp-Pass-Size", fmt.Sprint(members))
	w.WriteHeader(code)
	w.Write(body)
}

// admit applies drain, queue, and per-tenant admission. A zero status means
// admitted and release must be called; otherwise status/msg describe the
// refusal.
func (s *Server) admit(tenant string) (release func(), status int, msg string) {
	if s.draining.Load() {
		s.met.unavailable.Add(1)
		return nil, http.StatusServiceUnavailable, "server is draining"
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.rejected.Add(1)
		return nil, http.StatusTooManyRequests, "queue full"
	}
	s.tenantMu.Lock()
	if s.tenants[tenant] >= s.cfg.TenantLimit {
		s.tenantMu.Unlock()
		<-s.sem
		s.met.rejected.Add(1)
		return nil, http.StatusTooManyRequests, fmt.Sprintf("tenant %q concurrency limit", tenant)
	}
	s.tenants[tenant]++
	s.tenantMu.Unlock()
	return func() {
		s.tenantMu.Lock()
		s.tenants[tenant]--
		if s.tenants[tenant] == 0 {
			delete(s.tenants, tenant)
		}
		s.tenantMu.Unlock()
		<-s.sem
	}, 0, ""
}

// Metrics returns the daemon's counter snapshot (the /v1/metrics body).
func (s *Server) Metrics() MetricsResponse {
	p50, p99 := s.met.lat.percentiles()
	cache := s.cfg.Solver.Cache.Metrics()
	return MetricsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Draining:         s.draining.Load(),
		Strategies:       s.StrategyNames(),
		Requests:         s.met.requests.Load(),
		Solves:           s.met.solves.Load(),
		Coalesced:        s.met.coalesced.Load(),
		Rejected:         s.met.rejected.Load(),
		Unavailable:      s.met.unavailable.Load(),
		Errors:           s.met.errors.Load(),
		QueueDepth:       int64(len(s.sem)),
		QueueLimit:       s.cfg.QueueLimit,
		LatencyP50Millis: 1e3 * p50,
		LatencyP99Millis: 1e3 * p99,
		Cache:            cache,
		CacheHitRate:     cache.HitRate(),
		Solver:           s.cfg.Solver.Metrics(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(encodeJSON(s.Metrics()))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(encodeJSON(ErrorResponse{Error: msg}))
}

// encodeJSON marshals v, panicking on failure: every wire type here
// marshals by construction.
func encodeJSON(v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		panic("server: encoding response: " + err.Error())
	}
	return append(buf, '\n')
}
