package experiments

import (
	"fmt"

	"flexsp/internal/baselines"
	"flexsp/internal/costmodel"
	"flexsp/internal/report"
	"flexsp/internal/sim"
)

// Table1Cell is one (workload, SP degree) measurement: iteration time and
// All-to-All share, or OOM.
type Table1Cell struct {
	IterTime float64
	CommFrac float64
	OOM      bool
}

// Table1Result reproduces paper Table 1: GPT-7B iteration time and
// All-to-All ratio for fixed-length corpora of 4M tokens across SP degrees
// on 64 GPUs.
type Table1Result struct {
	SeqLens []int // per row
	Batch   []int // sequences per row (seq × bs = 4M tokens)
	Degrees []int // per column, descending as in the paper
	Cells   [][]Table1Cell
}

// Table1 runs the experiment.
func Table1(cfg Config) Table1Result {
	c := cfg.coeffs(costmodel.GPT7B)
	const totalTokens = 4 << 20
	res := Table1Result{Degrees: []int{64, 32, 16, 8, 4}}
	for seq := 4 << 10; seq <= 256<<10; seq *= 2 {
		bs := totalTokens / seq
		res.SeqLens = append(res.SeqLens, seq)
		res.Batch = append(res.Batch, bs)
		lens := make([]int, bs)
		for i := range lens {
			lens[i] = seq
		}
		row := make([]Table1Cell, len(res.Degrees))
		for di, d := range res.Degrees {
			if c.MaxTokensPerGroup(d) < seq {
				row[di] = Table1Cell{OOM: true}
				continue
			}
			plans, err := baselines.Homogeneous(c, lens, d)
			if err != nil {
				row[di] = Table1Cell{OOM: true}
				continue
			}
			exec, err := sim.ExecuteIteration(c, plans, sim.Options{IncludeZeRO: true})
			if err != nil {
				row[di] = Table1Cell{OOM: true}
				continue
			}
			row[di] = Table1Cell{IterTime: exec.Time, CommFrac: exec.AllToAllShare()}
		}
		res.Cells = append(res.Cells, row)
	}
	return res
}

// Render formats the result like the paper's Table 1.
func (r Table1Result) Render() string {
	headers := []string{"seq × bs"}
	for _, d := range r.Degrees {
		headers = append(headers, fmt.Sprintf("SP=%d", d))
	}
	t := report.NewTable("Table 1: GPT-7B iteration time (All-to-All ratio), 64 GPUs, 4M tokens/step", headers...)
	for i, seq := range r.SeqLens {
		row := []string{fmt.Sprintf("%s × %d", report.Tokens(seq), r.Batch[i])}
		for _, cell := range r.Cells[i] {
			if cell.OOM {
				row = append(row, "OOM")
				continue
			}
			row = append(row, fmt.Sprintf("%s %s", report.Secs(cell.IterTime), report.Pct(cell.CommFrac)))
		}
		t.Add(row...)
	}
	return t.String()
}
