package solver

import (
	"math/rand"
	"sync"
	"testing"

	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/planner"
	"flexsp/internal/workload"
)

// Hammer the disaggregated Service and the shared PlanCache from many
// goroutines at once. Run with -race; the assertions check that the
// hit/miss/creation accounting stays consistent under contention and that
// every submitted batch yields exactly one in-order result.
func TestServiceAndCacheConcurrency(t *testing.T) {
	coeffs := costmodel.Profile(costmodel.GPT7B, cluster.A100Cluster(16))
	inner := New(planner.New(coeffs))
	cache := NewPlanCache(256, 256)
	inner.Cache = cache
	sv := NewService(inner, 4)
	defer sv.Close()

	const producers, perProducer = 4, 8
	rng := rand.New(rand.NewSource(21))
	// Pre-draw batches from a small pool so the cache sees repeats.
	pool := make([][]int, 6)
	for i := range pool {
		pool[i] = workload.Wikipedia().Batch(rng, 24, 32<<10)
	}
	batches := make([][]int, producers*perProducer)
	for i := range batches {
		batches[i] = pool[rng.Intn(len(pool))]
	}

	// Producers submit concurrently; Submit assigns the sequence number, so
	// consumption order is whatever order the submissions won.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				sv.Submit(batches[p*perProducer+i])
			}
		}(p)
	}

	// Concurrent consumer: drain all results while submissions are racing.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < producers*perProducer; i++ {
			if _, err := sv.Next(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := sv.Pending(); n != 0 {
		t.Fatalf("%d results left pending", n)
	}

	hits, misses := cache.Stats()
	if hits+misses == 0 {
		t.Fatal("cache never consulted")
	}
	if hits == 0 {
		t.Fatal("repeated batches produced no cache hits")
	}
	if cache.Len() > 256 {
		t.Fatalf("cache exceeded its limit: %d", cache.Len())
	}

	// Direct PlanCache hammering: concurrent Get/Put on overlapping keys.
	var cwg sync.WaitGroup
	for w := 0; w < 8; w++ {
		cwg.Add(1)
		go func(w int) {
			defer cwg.Done()
			lens := pool[w%len(pool)][:16]
			for i := 0; i < 50; i++ {
				if p, ok := cache.Get(coeffs, lens); ok {
					if len(p.Groups) == 0 {
						t.Error("cached plan with no groups")
						return
					}
				} else {
					pl, err := planner.New(coeffs).Plan(lens)
					if err != nil {
						t.Error(err)
						return
					}
					cache.Put(lens, pl)
				}
			}
		}(w)
	}
	cwg.Wait()
	h2, m2 := cache.Stats()
	if h2 < hits || m2 < misses {
		t.Fatalf("stats went backwards: %d/%d -> %d/%d", hits, misses, h2, m2)
	}
}

// A Planner constructed with the zero value of Q (not via planner.New) is
// shared by all Service workers. Plan used to write the default bucket count
// through the shared pointer on first use — a data race under concurrent
// workers. Run with -race; the planner must also never see the write.
func TestServiceZeroQPlannerConcurrency(t *testing.T) {
	coeffs := costmodel.Profile(costmodel.GPT7B, cluster.A100Cluster(16))
	shared := &planner.Planner{Coeffs: coeffs} // Q == 0 on purpose
	sv := NewService(New(shared), 4)
	defer sv.Close()

	rng := rand.New(rand.NewSource(5))
	const batches = 16
	for i := 0; i < batches; i++ {
		sv.Submit(workload.Wikipedia().Batch(rng, 24, 32<<10))
	}
	for i := 0; i < batches; i++ {
		if _, err := sv.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if shared.Q != 0 {
		t.Fatalf("solver workers mutated the shared planner's Q to %d", shared.Q)
	}
}
