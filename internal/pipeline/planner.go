package pipeline

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"flexsp/internal/blaster"
	"flexsp/internal/costmodel"
	"flexsp/internal/obs"
	"flexsp/internal/planner"
)

// Planner jointly chooses the pipeline-parallel degree and the per-stage
// flexible-SP plans: for every candidate PP it carves the cluster, runs the
// FlexSP solver workflow (Alg. 1's micro-batch-count search + per-micro-batch
// planning) within each stage's sub-cluster, simulates the 1F1B schedule,
// and keeps the PP degree minimizing simulated iteration time. PP = 1 is the
// flat FlexSP system; with the default sweep (which includes 1) the joint
// plan matches or beats flat by construction. Setting Degrees without 1 —
// e.g. to pin a pipeline depth — deliberately forgoes that guarantee.
type Planner struct {
	// Base is the flat cost model the pipelines derive from. On a
	// heterogeneous fleet (Hetero non-nil) it holds the bottleneck view.
	Base costmodel.Coeffs
	// Hetero, when non-nil, builds every candidate pipeline with NewHetero:
	// stage ranges keep their device classes and layer splits follow
	// per-stage compute rates.
	Hetero *costmodel.HeteroCoeffs
	// Degrees are the candidate PP degrees (default 1, 2, 4, 8); degrees
	// that do not divide the cluster or exceed the layer count are skipped.
	Degrees []int
	// Trials is Alg. 1's M′ per PP degree (default blaster.DefaultTrials).
	Trials int
	// Strategy selects the per-stage planning algorithm.
	Strategy planner.Strategy
	// Parallel solves PP candidates and micro-batch plans concurrently.
	Parallel bool
	// IncludeZeRO charges exposed per-stage ZeRO time in the simulated
	// schedules (and therefore in the PP comparison).
	IncludeZeRO bool
}

// DefaultDegrees is the PP sweep of the joint planner.
var DefaultDegrees = []int{1, 2, 4, 8}

// NewPlanner returns a joint planner with the default sweep.
func NewPlanner(base costmodel.Coeffs) *Planner {
	return &Planner{Base: base, Degrees: DefaultDegrees, Trials: blaster.DefaultTrials, Parallel: true}
}

// NewHeteroPlanner returns a joint planner over a heterogeneous fleet.
func NewHeteroPlanner(h costmodel.HeteroCoeffs) *Planner {
	return &Planner{Base: h.Bottleneck(), Hetero: &h, Degrees: DefaultDegrees,
		Trials: blaster.DefaultTrials, Parallel: true}
}

// newPipe builds one candidate pipeline, class-aware when a mixed fleet is
// configured.
func (jp *Planner) newPipe(pp, m int) (Pipeline, error) {
	if jp.Hetero != nil {
		return NewHetero(*jp.Hetero, pp, m)
	}
	return New(jp.Base, pp, m)
}

// Candidate summarizes one swept PP degree.
type Candidate struct {
	PP int
	// M is the chosen micro-batch count (0 when infeasible).
	M int
	// Time is the best simulated iteration seconds at this degree.
	Time float64
	// BubbleFrac is the pipeline bubble share of the best schedule.
	BubbleFrac float64
	// PeakMemFrac is the best schedule's peak device-memory fraction.
	PeakMemFrac float64
	// Feasible reports whether any micro-batch count produced a valid plan.
	Feasible bool
	// Note explains infeasibility.
	Note string
}

// Result is the joint plan.
type Result struct {
	// Pipe is the chosen pipeline (PP = 1 means flat FlexSP).
	Pipe Pipeline
	// Plans holds the chosen per-stage plans: Plans[j][s] is micro-batch
	// j's flexible-SP plan on stage s.
	Plans [][]planner.MicroPlan
	// Time is the simulated iteration seconds of the chosen pipeline.
	Time float64
	// Sched is the simulated 1F1B schedule of the chosen pipeline.
	Sched ScheduleResult
	// Candidates lists every swept PP degree, ascending.
	Candidates []Candidate
	// SolveWall is the planning wall-clock time.
	SolveWall time.Duration
}

// ErrUnsolvable is returned when no swept PP degree yields a feasible plan.
var ErrUnsolvable = fmt.Errorf("pipeline: no feasible joint PP×SP plan for batch")

// Solve runs the joint PP×SP search on one data batch of sequence lengths.
func (jp *Planner) Solve(batch []int) (Result, error) {
	return jp.SolveContext(context.Background(), batch)
}

// SolveContext is Solve with cancellation: the context is checked at every
// PP-degree, micro-batch-count, and micro-batch-plan boundary, so a canceled
// request (an HTTP client gone away, a draining server) stops consuming
// planner workers within one micro-batch plan. A canceled call returns
// ctx.Err(), never ErrUnsolvable.
func (jp *Planner) SolveContext(ctx context.Context, batch []int) (Result, error) {
	start := time.Now()
	ctx, span := obs.Start(ctx, "pipeline.solve")
	defer span.End()
	span.SetAttr("seqs", len(batch))
	degrees := jp.Degrees
	if len(degrees) == 0 {
		degrees = DefaultDegrees
	}
	n := jp.Base.Topo.NumDevices()
	var sweep []int
	for _, pp := range degrees {
		if pp >= 1 && pp <= n && n%pp == 0 && pp <= jp.Base.Model.Layers {
			sweep = append(sweep, pp)
		}
	}
	if len(sweep) == 0 {
		return Result{}, fmt.Errorf("pipeline: no valid PP degree in %v for %d devices", degrees, n)
	}
	if len(batch) == 0 {
		// An empty batch has a trivial plan; return a valid (flat) pipeline
		// so the advertised Execute follow-up works.
		pipe, err := jp.newPipe(1, 1)
		if err != nil {
			return Result{}, err
		}
		return Result{Pipe: pipe, Candidates: []Candidate{{PP: 1, Feasible: true}},
			SolveWall: time.Since(start)}, nil
	}

	outs := make([]outcome, len(sweep))
	run := func(i int) { outs[i] = jp.solveDegree(ctx, batch, sweep[i]) }
	if jp.Parallel {
		var wg sync.WaitGroup
		for i := range sweep {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		}
		wg.Wait()
	} else {
		for i := range sweep {
			run(i)
		}
	}

	res := Result{Time: math.Inf(1)}
	for _, o := range outs {
		res.Candidates = append(res.Candidates, o.cand)
		if o.cand.Feasible && o.cand.Time < res.Time {
			res.Pipe, res.Plans, res.Time, res.Sched = o.pipe, o.plans, o.cand.Time, o.sched
		}
	}
	if err := ctx.Err(); err != nil {
		span.SetError(err)
		return Result{}, err
	}
	if math.IsInf(res.Time, 1) {
		span.SetError(ErrUnsolvable)
		return Result{Candidates: res.Candidates}, ErrUnsolvable
	}
	res.SolveWall = time.Since(start)
	span.SetAttr("pp", res.Pipe.PP)
	span.SetAttr("est_time", res.Time)
	return res, nil
}

// outcome is one PP degree's search result.
type outcome struct {
	cand  Candidate
	pipe  Pipeline
	plans [][]planner.MicroPlan
	sched ScheduleResult
}

// solveDegree runs the micro-batch-count search at one PP degree.
func (jp *Planner) solveDegree(ctx context.Context, batch []int, pp int) (o outcome) {
	ctx, span := obs.Start(ctx, "pipeline.degree")
	defer span.End()
	span.SetAttr("pp", pp)
	defer func() {
		span.SetAttr("feasible", o.cand.Feasible)
		if o.cand.Feasible {
			span.SetAttr("m", o.cand.M)
			span.SetAttr("est_time", o.cand.Time)
		} else if o.cand.Note != "" {
			span.SetAttr("note", o.cand.Note)
		}
	}()
	o.cand = Candidate{PP: pp}

	// M_min: smallest m whose in-flight-aware stage capacity admits the
	// batch. Capacity shrinks as m grows (more micro-batches in flight)
	// until m reaches pp, so iterate to the fixpoint.
	mmin := 1
	for {
		pipe, err := jp.newPipe(pp, mmin)
		if err != nil {
			o.cand.Note = err.Error()
			return o
		}
		need := blaster.MinMicroBatches(batch, pipe.TokenCapacity())
		if need == 0 {
			o.cand.Note = "batch exceeds stage token capacity"
			return o
		}
		if need <= mmin || mmin >= len(batch) {
			break
		}
		mmin = need
	}

	trials := jp.Trials
	if trials <= 0 {
		trials = blaster.DefaultTrials
	}
	best := math.Inf(1)
	tryM := func(m int) bool {
		if ctx.Err() != nil {
			return false
		}
		pipe, plans, sched, err := jp.planM(ctx, batch, pp, m)
		if err != nil {
			if o.cand.Note == "" {
				o.cand.Note = err.Error()
			}
			return false
		}
		if sched.Time < best {
			best = sched.Time
			o.cand = Candidate{PP: pp, M: m, Time: sched.Time,
				BubbleFrac: sched.BubbleFrac, PeakMemFrac: sched.PeakMemFrac, Feasible: true}
			o.pipe, o.plans, o.sched = pipe, plans, sched
		}
		return true
	}
	for t := 0; t < trials; t++ {
		if m := mmin + t; m <= len(batch) {
			tryM(m)
		}
	}
	if !o.cand.Feasible {
		// Widen the window geometrically like the flat solver does when a
		// conservative capacity estimate blocks the first trials.
		for m := mmin + trials; m <= len(batch); m += trials {
			if tryM(m) {
				break
			}
		}
	}
	return o
}

// planM blasts the batch into m micro-batches and plans every (micro-batch,
// stage) cell, then simulates the schedule.
func (jp *Planner) planM(ctx context.Context, batch []int, pp, m int) (Pipeline, [][]planner.MicroPlan, ScheduleResult, error) {
	pipe, err := jp.newPipe(pp, m)
	if err != nil {
		return Pipeline{}, nil, ScheduleResult{}, err
	}
	micro, err := blaster.Blast(batch, m)
	if err != nil {
		return Pipeline{}, nil, ScheduleResult{}, err
	}

	plans := make([][]planner.MicroPlan, len(micro))
	errs := make([]error, len(micro))
	planOne := func(j int) {
		if errs[j] = ctx.Err(); errs[j] != nil {
			return
		}
		plans[j] = make([]planner.MicroPlan, pp)
		for s, st := range pipe.Stages {
			pl := planner.New(st.Coeffs)
			pl.Strategy = jp.Strategy
			plans[j][s], errs[j] = pl.Plan(micro[j])
			if errs[j] != nil {
				errs[j] = fmt.Errorf("pipeline: PP=%d stage %d micro %d: %w", pp, s, j, errs[j])
				return
			}
		}
	}
	if jp.Parallel {
		var wg sync.WaitGroup
		for j := range micro {
			wg.Add(1)
			go func(j int) { defer wg.Done(); planOne(j) }(j)
		}
		wg.Wait()
	} else {
		for j := range micro {
			planOne(j)
		}
	}
	for _, err := range errs {
		if err != nil {
			return Pipeline{}, nil, ScheduleResult{}, err
		}
	}

	sched, err := pipe.Execute(plans, Options{IncludeZeRO: jp.IncludeZeRO})
	if err != nil {
		return Pipeline{}, nil, ScheduleResult{}, err
	}
	return pipe, plans, sched, nil
}
