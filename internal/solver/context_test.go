package solver

import (
	"context"
	"errors"
	"testing"

	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/planner"
)

func contextTestSolver() *Solver {
	c := costmodel.Profile(costmodel.GPT7B, cluster.A100Cluster(8))
	return New(planner.New(c))
}

var contextTestBatch = []int{1024, 2048, 3072, 4096, 6144, 8192, 12288, 16384}

// TestSolveContextCanceled pins cancellation: a canceled context returns
// ctx.Err(), never ErrUnsolvable, and counts as canceled in the metrics.
func TestSolveContextCanceled(t *testing.T) {
	s := contextTestSolver()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.SolveContext(ctx, contextTestBatch)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m := s.Metrics(); m.Canceled != 1 || m.Solves != 0 {
		t.Fatalf("metrics = %+v, want Canceled=1 Solves=0", m)
	}
}

// TestSolveContextBackground pins that Solve and SolveContext with a live
// context agree.
func TestSolveContextBackground(t *testing.T) {
	a, b := contextTestSolver(), contextTestSolver()
	ra, err := a.Solve(contextTestBatch)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.SolveContext(context.Background(), contextTestBatch)
	if err != nil {
		t.Fatal(err)
	}
	if ra.M != rb.M || ra.Time != rb.Time || len(ra.Plans) != len(rb.Plans) {
		t.Fatalf("Solve and SolveContext disagree: %v vs %v", ra, rb)
	}
}

// TestSolverMetricsCounters pins the exported counters a serving layer
// reports: completed solves and planner invocations, with cache hits and
// dedups reducing Planned on repeat batches.
func TestSolverMetricsCounters(t *testing.T) {
	s := contextTestSolver()
	s.Cache = NewPlanCache(128, 256)
	if _, err := s.Solve(contextTestBatch); err != nil {
		t.Fatal(err)
	}
	m1 := s.Metrics()
	if m1.Solves != 1 {
		t.Fatalf("Solves = %d, want 1", m1.Solves)
	}
	if m1.Planned == 0 {
		t.Fatal("Planned = 0 after an uncached solve")
	}
	if _, err := s.Solve(contextTestBatch); err != nil {
		t.Fatal(err)
	}
	m2 := s.Metrics()
	if m2.Solves != 2 {
		t.Fatalf("Solves = %d, want 2", m2.Solves)
	}
	if grown := m2.Planned - m1.Planned; grown >= m1.Planned {
		t.Fatalf("repeat solve planned %d micro-batches, first planned %d — cache not engaged", grown, m1.Planned)
	}
}
