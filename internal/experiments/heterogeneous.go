package experiments

import (
	"fmt"
	"strings"

	"flexsp/internal/baselines"
	"flexsp/internal/cluster"
	"flexsp/internal/costmodel"
	"flexsp/internal/planner"
	"flexsp/internal/report"
	"flexsp/internal/sim"
	"flexsp/internal/solver"
	"flexsp/internal/workload"
)

// HeteroSystem is one compared scheduling policy of the heterogeneous
// experiment, in a machine-readable shape (BENCH_heterogeneous.json).
type HeteroSystem struct {
	// System names the policy.
	System string `json:"system"`
	// MeanIterSeconds is the mean simulated iteration time over the
	// iterations that completed (0 when none did).
	MeanIterSeconds float64 `json:"mean_iter_seconds"`
	// OOMIters counts iterations whose placement broke a device's memory.
	OOMIters int `json:"oom_iters"`
	// PeakMemFrac is the worst per-device memory fraction observed.
	PeakMemFrac float64 `json:"peak_mem_frac"`
}

// HeterogeneousResult compares placement-aware flexible SP against
// class-oblivious scheduling on a mixed fleet.
type HeterogeneousResult struct {
	Spec       string `json:"spec"`
	Devices    int    `json:"devices"`
	Model      string `json:"model"`
	Dataset    string `json:"dataset"`
	MaxCtx     int    `json:"max_ctx"`
	Iterations int    `json:"iterations"`
	// SkippedIters counts iterations whose batch no policy could plan at
	// all — the fleet is too small for the workload (e.g. a tiny -cluster
	// spec under the experiment's 128K context). They are excluded from
	// every system's mean.
	SkippedIters int            `json:"skipped_iters"`
	Systems      []HeteroSystem `json:"systems"`
}

// DefaultHeteroSpec is the experiment's fleet when Config.ClusterSpec is
// empty: half the paper's testbed kept on A100-40G nodes, half upgraded to
// H100 — the mid-refresh fleet shape the refactor targets.
const DefaultHeteroSpec = "mixed:32xA100,32xH100"

// Heterogeneous runs the mixed-cluster experiment: the same GPT-7B long-tail
// workload is planned and executed under four policies —
//
//   - "flexsp-aware": the placement-aware planner; groups carry the
//     device-class region they were optimized for.
//   - "oblivious-shuffled": class-oblivious planning (the fleet treated as
//     its slowest, smallest-memory device) with a seeded class-blind shuffle
//     of the group placement — a scheduler that sees only device counts.
//     Memory-safe by construction, but the load never exploits the fast
//     half: the headline iteration-time comparison.
//   - "bottleneck-homogeneous": the same class-oblivious plans placed
//     lowest-address-first (what running the unmodified homogeneous planner
//     on a mixed fleet would mean).
//   - "aware-plans-shuffled": the aware plans handed to a class-blind
//     placer with a few OOM-crash-and-re-roll lives. Its loads were
//     balanced for specific regions, so shuffling routinely lands a
//     token-heavy group on the 40-GB half and breaks memory — placement is
//     load-bearing, not a cosmetic detail.
//
// All four execute on the same simulated mixed fleet via the heterogeneous
// executor, so differences are pure scheduling quality.
func Heterogeneous(cfg Config) HeterogeneousResult {
	mixed := heteroFleet(cfg)
	model := costmodel.GPT7B
	h := costmodel.ProfileMixed(model, mixed)
	d := workload.CommonCrawl()
	maxCtx := 128 << 10

	res := HeterogeneousResult{
		Spec:       mixed.String(),
		Devices:    mixed.NumDevices(),
		Model:      model.Name,
		Dataset:    d.Name,
		MaxCtx:     maxCtx,
		Iterations: cfg.Iterations,
	}
	batches := cfg.drawBatches(d, maxCtx, 4087)

	aware := HeteroSystem{System: "flexsp-aware"}
	oblivious := HeteroSystem{System: "oblivious-shuffled"}
	bottleneck := HeteroSystem{System: "bottleneck-homogeneous"}
	fragile := HeteroSystem{System: "aware-plans-shuffled"}

	awareSolver := solver.New(planner.NewHetero(h))
	awareSolver.Overhead = h.Bottleneck().ZeROTime()
	bottom := h.Bottleneck()
	bottomSolver := solver.New(planner.New(bottom))
	bottomSolver.Overhead = bottom.ZeROTime()

	record := func(sys *HeteroSystem, r sim.IterResult, err error) {
		if r.PeakMemFrac > sys.PeakMemFrac {
			sys.PeakMemFrac = r.PeakMemFrac
		}
		if err != nil {
			sys.OOMIters++
			return
		}
		sys.MeanIterSeconds += r.Time
	}
	shuffle := func(plans []planner.MicroPlan, seed int64) []planner.MicroPlan {
		out, err := baselines.ObliviousPlacement(h, plans, seed)
		if err != nil {
			panic("experiments: oblivious placement: " + err.Error())
		}
		return out
	}
	for i, b := range batches {
		sol, err := awareSolver.Solve(b)
		if err != nil {
			// The workload does not fit this fleet at all (tiny -cluster
			// specs): skip the iteration for every policy rather than crash.
			res.SkippedIters++
			continue
		}
		r, execErr := mustExecHetero(h, sol.Plans, int64(i))
		record(&aware, r, execErr)

		// The aware plans under a class-blind placer, with a few
		// OOM-crash-and-re-roll lives; charge the OOM only when every roll
		// breaks memory.
		rerolled := sol.Plans
		for k := int64(0); k < obliviousLives; k++ {
			rerolled = shuffle(sol.Plans, int64(i)*obliviousLives+k)
			if plansFit(h, rerolled) {
				break
			}
		}
		r, execErr = mustExecHetero(h, rerolled, int64(i))
		record(&fragile, r, execErr)

		if bsol, err := bottomSolver.Solve(b); err != nil {
			bottleneck.OOMIters++
			oblivious.OOMIters++
		} else {
			r, execErr = mustExecHetero(h, bsol.Plans, int64(i))
			record(&bottleneck, r, execErr)
			// Class-oblivious plans assume the minimum memory everywhere, so
			// any shuffled placement of them fits; no lives needed.
			r, execErr = mustExecHetero(h, shuffle(bsol.Plans, int64(i)), int64(i))
			record(&oblivious, r, execErr)
		}
	}
	for _, sys := range []*HeteroSystem{&aware, &oblivious, &bottleneck, &fragile} {
		if ok := cfg.Iterations - res.SkippedIters - sys.OOMIters; ok > 0 {
			sys.MeanIterSeconds /= float64(ok)
		}
		res.Systems = append(res.Systems, *sys)
	}
	return res
}

// heteroFleet resolves the experiment's fleet: an explicit ClusterSpec wins;
// otherwise Devices is split half A100-40G, half H100 when that makes a
// valid fleet (whole nodes), falling back to the 64-GPU default. The fleet
// actually used is always reported in the result's Spec.
func heteroFleet(cfg Config) cluster.MixedTopology {
	if cfg.ClusterSpec != "" {
		mixed, err := cluster.ParseClusterSpec(cfg.ClusterSpec)
		if err != nil {
			panic("experiments: " + err.Error())
		}
		return mixed
	}
	if cfg.Devices > 0 {
		half := cfg.Devices / 2
		if m, err := cluster.MixedCluster(
			cluster.ClassCount{Class: cluster.A100_40G, Devices: half},
			cluster.ClassCount{Class: cluster.H100, Devices: cfg.Devices - half}); err == nil {
			return m
		}
	}
	mixed, err := cluster.ParseClusterSpec(DefaultHeteroSpec)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return mixed
}

// obliviousLives is how many placement re-rolls the class-oblivious
// scheduler gets per iteration before its OOM is charged.
const obliviousLives = 8

// plansFit reports whether every placed group fits its region's memory.
func plansFit(h costmodel.HeteroCoeffs, plans []planner.MicroPlan) bool {
	for _, p := range plans {
		for _, g := range p.Groups {
			if len(g.Lens) > 0 && !h.Group(g.Range).Fits(g.Lens, g.Degree) {
				return false
			}
		}
	}
	return true
}

// mustExecHetero executes plans on the mixed fleet, treating only OOM as a
// reportable per-iteration outcome (anything else is an experiment bug).
func mustExecHetero(h costmodel.HeteroCoeffs, plans []planner.MicroPlan, seed int64) (sim.IterResult, error) {
	r, err := sim.ExecuteIterationHetero(h, plans, sim.Options{IncludeZeRO: true, Seed: seed})
	if err != nil && r.OOM {
		return r, err
	}
	if err != nil {
		panic("experiments: heterogeneous execute: " + err.Error())
	}
	return r, nil
}

// AwareSpeedup returns the placement-aware mean-time speedup over the given
// system name (0 when either side has no completed iterations).
func (r HeterogeneousResult) AwareSpeedup(over string) float64 {
	var aware, other float64
	for _, s := range r.Systems {
		switch s.System {
		case "flexsp-aware":
			aware = s.MeanIterSeconds
		case over:
			other = s.MeanIterSeconds
		}
	}
	if aware == 0 || other == 0 {
		return 0
	}
	return other / aware
}

// Render formats the comparison.
func (r HeterogeneousResult) Render() string {
	t := report.NewTable(
		fmt.Sprintf("Heterogeneous cluster: %s on %s (%d GPUs), %s, max ctx %s",
			r.Model, r.Spec, r.Devices, r.Dataset, report.Tokens(r.MaxCtx)),
		"system", "mean iter", "OOM iters", "peak mem", "vs aware")
	var aware float64
	for _, s := range r.Systems {
		if s.System == "flexsp-aware" {
			aware = s.MeanIterSeconds
		}
	}
	for _, s := range r.Systems {
		mean := "n/a"
		if s.MeanIterSeconds > 0 {
			mean = report.Secs(s.MeanIterSeconds)
		}
		vs := "—"
		if s.System != "flexsp-aware" && aware > 0 && s.MeanIterSeconds > 0 {
			vs = report.Ratio(s.MeanIterSeconds / aware)
		}
		t.Add(s.System, mean, fmt.Sprintf("%d/%d", s.OOMIters, r.Iterations),
			report.Pct(s.PeakMemFrac), vs)
	}
	var b strings.Builder
	b.WriteString(t.String())
	if r.SkippedIters > 0 {
		fmt.Fprintf(&b, "%d/%d iterations skipped: the %s batch does not fit this fleet under any policy (use a larger -cluster)\n",
			r.SkippedIters, r.Iterations, report.Tokens(r.MaxCtx))
	}
	b.WriteString("placement-aware planning loads the fast half harder and keeps token-heavy groups off the 40-GB nodes;\n")
	b.WriteString("the shuffled baseline shows what a class-oblivious scheduler costs on the same fleet\n")
	return b.String()
}
