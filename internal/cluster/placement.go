package cluster

import (
	"fmt"
	"sort"
)

// GroupPlacement is a concrete assignment of SP groups to device ranges. A
// placement is valid when groups are disjoint, aligned, power-of-two sized
// ranges that fit within the cluster.
type GroupPlacement struct {
	// Ranges lists the placed groups as [start, start+size) device ranges.
	Ranges []DeviceRange
}

// DeviceRange is a contiguous block of devices [Start, Start+Size).
type DeviceRange struct {
	Start, Size int
}

// End returns the exclusive upper bound of the range.
func (r DeviceRange) End() int { return r.Start + r.Size }

// Aligned reports whether the range starts at a multiple of its size, the
// invariant that lets every group reuse one of the ≤ log N cached
// neighbour-pair communicators (paper §5 footnote 4).
func (r DeviceRange) Aligned() bool { return r.Size > 0 && r.Start%r.Size == 0 }

func (r DeviceRange) String() string {
	return fmt.Sprintf("[%d:%d)", r.Start, r.End())
}

// PlaceGroups assigns aligned device ranges to the requested SP degrees on a
// cluster with n devices. Degrees must each be a power of two and sum to at
// most n. Larger groups are placed first (first-fit on aligned boundaries),
// which always succeeds for power-of-two degrees by the buddy-allocation
// property.
func PlaceGroups(n int, degrees []int) (GroupPlacement, error) {
	total := 0
	for _, d := range degrees {
		if d <= 0 || d&(d-1) != 0 {
			return GroupPlacement{}, fmt.Errorf("cluster: degree %d is not a power of two", d)
		}
		total += d
	}
	if total > n {
		return GroupPlacement{}, fmt.Errorf("cluster: degrees sum to %d > %d devices", total, n)
	}

	// Sort indices by degree descending so big groups claim aligned blocks
	// before fragmentation can occur, then restore input order in output.
	idx := make([]int, len(degrees))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return degrees[idx[a]] > degrees[idx[b]] })

	used := make([]bool, n)
	ranges := make([]DeviceRange, len(degrees))
	for _, i := range idx {
		d := degrees[i]
		placed := false
		for start := 0; start+d <= n; start += d {
			free := true
			for dev := start; dev < start+d; dev++ {
				if used[dev] {
					free = false
					break
				}
			}
			if free {
				for dev := start; dev < start+d; dev++ {
					used[dev] = true
				}
				ranges[i] = DeviceRange{Start: start, Size: d}
				placed = true
				break
			}
		}
		if !placed {
			return GroupPlacement{}, fmt.Errorf("cluster: no aligned slot for degree %d", d)
		}
	}
	return GroupPlacement{Ranges: ranges}, nil
}

// Validate checks the placement invariants against a cluster of n devices.
func (p GroupPlacement) Validate(n int) error {
	used := make([]bool, n)
	for _, r := range p.Ranges {
		if !r.Aligned() {
			return fmt.Errorf("cluster: range %v is not aligned", r)
		}
		if r.Size&(r.Size-1) != 0 {
			return fmt.Errorf("cluster: range %v is not a power of two", r)
		}
		if r.End() > n {
			return fmt.Errorf("cluster: range %v exceeds %d devices", r, n)
		}
		for dev := r.Start; dev < r.End(); dev++ {
			if used[dev] {
				return fmt.Errorf("cluster: device %d placed twice", dev)
			}
			used[dev] = true
		}
	}
	return nil
}
