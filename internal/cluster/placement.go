package cluster

import (
	"fmt"
	"sort"
)

// GroupPlacement is a concrete assignment of SP groups to device ranges. A
// placement is valid when groups are disjoint, aligned, power-of-two sized
// ranges that fit within the cluster.
type GroupPlacement struct {
	// Ranges lists the placed groups as [start, start+size) device ranges.
	Ranges []DeviceRange
}

// DeviceRange is a contiguous block of devices [Start, Start+Size).
type DeviceRange struct {
	Start, Size int
}

// End returns the exclusive upper bound of the range.
func (r DeviceRange) End() int { return r.Start + r.Size }

// Aligned reports whether the range starts at a multiple of its size, the
// invariant that lets every group reuse one of the ≤ log N cached
// neighbour-pair communicators (paper §5 footnote 4).
func (r DeviceRange) Aligned() bool { return r.Size > 0 && r.Start%r.Size == 0 }

func (r DeviceRange) String() string {
	return fmt.Sprintf("[%d:%d)", r.Start, r.End())
}

// PlaceGroups assigns aligned device ranges to the requested SP degrees on a
// cluster with n devices. Degrees must each be a power of two and sum to at
// most n. Larger groups are placed first (first-fit on aligned boundaries),
// which always succeeds for power-of-two degrees by the buddy-allocation
// property.
func PlaceGroups(n int, degrees []int) (GroupPlacement, error) {
	return PlaceGroupsScored(n, degrees, nil)
}

// PlaceGroupsScored is PlaceGroups with a slot preference: among the free
// aligned slots for each group (largest groups choose first), the slot
// maximizing score wins, ties to the lowest start. A nil score reproduces
// PlaceGroups' lowest-address placement. On a heterogeneous fleet the score
// lets the planner steer groups onto device-class regions — fast nodes for
// the long-sequence groups, large-memory nodes for token-heavy ones — and
// any choice of aligned slots succeeds: placing in non-increasing size order
// keeps every size-d cell of the device grid either fully free or fully
// occupied, so a free aligned slot always exists while capacity remains.
func PlaceGroupsScored(n int, degrees []int, score func(DeviceRange) float64) (GroupPlacement, error) {
	total := 0
	for _, d := range degrees {
		if d <= 0 || d&(d-1) != 0 {
			return GroupPlacement{}, fmt.Errorf("cluster: degree %d is not a power of two", d)
		}
		total += d
	}
	if total > n {
		return GroupPlacement{}, fmt.Errorf("cluster: degrees sum to %d > %d devices", total, n)
	}

	// Sort indices by degree descending so big groups claim aligned blocks
	// before fragmentation can occur, then restore input order in output.
	idx := make([]int, len(degrees))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return degrees[idx[a]] > degrees[idx[b]] })

	used := make([]bool, n)
	ranges := make([]DeviceRange, len(degrees))
	for _, i := range idx {
		d := degrees[i]
		best, bestScore := -1, 0.0
		for start := 0; start+d <= n; start += d {
			free := true
			for dev := start; dev < start+d; dev++ {
				if used[dev] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			if score == nil {
				best = start
				break
			}
			if s := score(DeviceRange{Start: start, Size: d}); best == -1 || s > bestScore {
				best, bestScore = start, s
			}
		}
		if best == -1 {
			return GroupPlacement{}, fmt.Errorf("cluster: no aligned slot for degree %d", d)
		}
		for dev := best; dev < best+d; dev++ {
			used[dev] = true
		}
		ranges[i] = DeviceRange{Start: best, Size: d}
	}
	return GroupPlacement{Ranges: ranges}, nil
}

// Validate checks the placement invariants against a cluster of n devices.
func (p GroupPlacement) Validate(n int) error {
	used := make([]bool, n)
	for _, r := range p.Ranges {
		if !r.Aligned() {
			return fmt.Errorf("cluster: range %v is not aligned", r)
		}
		if r.Size&(r.Size-1) != 0 {
			return fmt.Errorf("cluster: range %v is not a power of two", r)
		}
		if r.End() > n {
			return fmt.Errorf("cluster: range %v exceeds %d devices", r, n)
		}
		for dev := r.Start; dev < r.End(); dev++ {
			if used[dev] {
				return fmt.Errorf("cluster: device %d placed twice", dev)
			}
			used[dev] = true
		}
	}
	return nil
}
