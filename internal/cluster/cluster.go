// Package cluster models the GPU cluster FlexSP schedules onto: nodes,
// devices, intra-node (NVLink) and inter-node (InfiniBand) interconnect
// bandwidths, and device memory. It also implements topology-aware placement
// of sequence-parallel (SP) groups and the communication-group pool used for
// hot switching (paper §5).
//
// The paper's testbed is 8 nodes × 8 NVIDIA A100-40GB GPUs with NVLink inside
// a node and 400 Gbps InfiniBand between nodes. Topology is the single most
// important input to FlexSP's cost model: an SP group that fits inside one
// node communicates at NVLink speed, while a group spanning nodes is
// bottlenecked by each GPU's share of the node NIC.
//
// Beyond the paper's homogeneous testbed, the package models heterogeneous
// fleets: DeviceClass captures one GPU model's rates, MixedTopology strings
// node groups of different classes together, and RangeView projects any
// placed device range back onto a bottleneck homogeneous Topology so the
// scalar α-β cost model applies per placement (see class.go).
package cluster

import (
	"fmt"
	"math/bits"
)

// Topology describes a homogeneous GPU cluster.
type Topology struct {
	// Nodes is the number of machines.
	Nodes int
	// DevicesPerNode is the number of GPUs in each machine.
	DevicesPerNode int
	// DeviceMemory is per-GPU memory in bytes.
	DeviceMemory int64
	// MemoryReserve is memory unavailable to training (runtime context,
	// fragmentation, workspace), in bytes.
	MemoryReserve int64
	// EffFLOPS is the effective sustained compute rate of one device in
	// FLOP/s for transformer kernels (matmul + flash attention).
	EffFLOPS float64
	// IntraBW is the effective per-device all-to-all bandwidth inside a
	// node (NVLink), in bytes/s.
	IntraBW float64
	// InterBW is the per-node network bandwidth (NIC), in bytes/s. A
	// device's share of it is InterBW / DevicesPerNode when all devices of
	// a node communicate off-node simultaneously.
	InterBW float64
}

// A100 interconnect and compute constants used throughout the reproduction.
// They are "profiled" values in the sense of the paper's α-β model: effective
// rates, not peaks.
const (
	a100MemoryBytes   = 40 << 30
	a100ReserveBytes  = 1 << 30
	a100EffFLOPS      = 140e12 // effective bf16 matmul+flash-attn throughput
	nvlinkEffBW       = 80e9   // effective per-GPU all-to-all NVLink bandwidth
	infinibandNodeBW  = 50e9   // 400 Gbps NIC per node
	defaultDevPerNode = 8
)

// A100Cluster returns the paper's testbed scaled to the given total device
// count, which must be a multiple of 8 (or less than 8 for single partial
// node setups used in tests). It panics on invalid counts; CLIs and other
// callers that need a recoverable error use NewA100Cluster.
func A100Cluster(devices int) Topology {
	t, err := NewA100Cluster(devices)
	if err != nil {
		panic(err.Error())
	}
	return t
}

// NewA100Cluster is the non-panicking constructor behind A100Cluster: it
// returns an error for non-positive counts and counts above one node that are
// not whole numbers of 8-GPU nodes.
func NewA100Cluster(devices int) (Topology, error) {
	if devices <= 0 {
		return Topology{}, fmt.Errorf("cluster: device count must be positive, got %d", devices)
	}
	perNode := defaultDevPerNode
	nodes := devices / perNode
	if devices < perNode {
		perNode = devices
		nodes = 1
	}
	if nodes*perNode != devices {
		return Topology{}, fmt.Errorf("cluster: %d devices is not a multiple of %d (use a whole number of 8-GPU nodes, or fewer than 8 for a partial node)", devices, defaultDevPerNode)
	}
	return Topology{
		Nodes:          nodes,
		DevicesPerNode: perNode,
		DeviceMemory:   a100MemoryBytes,
		MemoryReserve:  a100ReserveBytes,
		EffFLOPS:       a100EffFLOPS,
		IntraBW:        nvlinkEffBW,
		InterBW:        infinibandNodeBW,
	}, nil
}

// Carve returns the topology of one of `parts` equal contiguous sub-clusters,
// used by pipeline parallelism to give each stage its own device range: a
// whole number of nodes when each part spans at least a node, or an even
// slice of one node otherwise. Interconnect and per-device rates carry over
// unchanged; a sub-cluster smaller than a node keeps the full node's
// DevicesPerNode share semantics by shrinking DevicesPerNode, which is safe
// because groups inside such a part never leave the node.
func (t Topology) Carve(parts int) (Topology, error) {
	n := t.NumDevices()
	if parts <= 0 {
		return Topology{}, fmt.Errorf("cluster: non-positive part count %d", parts)
	}
	if n%parts != 0 {
		return Topology{}, fmt.Errorf("cluster: %d devices not divisible into %d parts", n, parts)
	}
	per := n / parts
	sub := t
	switch {
	case per >= t.DevicesPerNode:
		if per%t.DevicesPerNode != 0 {
			return Topology{}, fmt.Errorf("cluster: part size %d is not a whole number of %d-device nodes", per, t.DevicesPerNode)
		}
		sub.Nodes = per / t.DevicesPerNode
	default:
		if t.DevicesPerNode%per != 0 {
			return Topology{}, fmt.Errorf("cluster: part size %d does not evenly split a %d-device node", per, t.DevicesPerNode)
		}
		sub.Nodes = 1
		sub.DevicesPerNode = per
		// The node's NIC is still shared with the node's other parts, so a
		// part keeps only its devices' share of it.
		sub.InterBW = t.InterBW * float64(per) / float64(t.DevicesPerNode)
	}
	return sub, nil
}

// NumDevices returns the total device count.
func (t Topology) NumDevices() int { return t.Nodes * t.DevicesPerNode }

// UsableMemory is the per-device memory budget available to model states and
// activations, in bytes.
func (t Topology) UsableMemory() int64 { return t.DeviceMemory - t.MemoryReserve }

// InterBWPerDevice is one device's share of the node NIC when every device of
// the node sends off-node concurrently.
func (t Topology) InterBWPerDevice() float64 {
	return t.InterBW / float64(t.DevicesPerNode)
}

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	switch {
	case t.Nodes <= 0 || t.DevicesPerNode <= 0:
		return fmt.Errorf("cluster: non-positive size (%d nodes × %d devices)", t.Nodes, t.DevicesPerNode)
	case t.DeviceMemory <= t.MemoryReserve:
		return fmt.Errorf("cluster: reserve %d exceeds device memory %d", t.MemoryReserve, t.DeviceMemory)
	case t.EffFLOPS <= 0 || t.IntraBW <= 0 || t.InterBW <= 0:
		return fmt.Errorf("cluster: rates must be positive")
	}
	return nil
}

// SPDegrees returns the candidate SP degrees for this cluster: powers of two
// from 1 up to the device count (paper §4.1.1 footnote 3).
func (t Topology) SPDegrees() []int {
	n := t.NumDevices()
	var ds []int
	for d := 1; d <= n; d *= 2 {
		ds = append(ds, d)
	}
	return ds
}

// IsValidDegree reports whether d is a legal SP degree on this cluster.
func (t Topology) IsValidDegree(d int) bool {
	return d >= 1 && d <= t.NumDevices() && bits.OnesCount(uint(d)) == 1
}

// AllToAllTraffic describes the per-device traffic decomposition of one
// all-to-all over an SP group, split into the portion that stays on NVLink
// and the portion that crosses nodes.
type AllToAllTraffic struct {
	// IntraPeers and InterPeers are the number of peer devices reachable
	// over NVLink and over the network respectively (degree-1 in total).
	IntraPeers, InterPeers int
}

// GroupTraffic returns the peer decomposition of an SP group of the given
// degree. Groups are always placed on aligned contiguous device ranges
// (paper §5 footnote 4: each GPU pairs with its neighbours), so a group of
// degree d ≤ DevicesPerNode lies inside one node and a larger group spans
// d/DevicesPerNode whole nodes.
func (t Topology) GroupTraffic(degree int) AllToAllTraffic {
	if !t.IsValidDegree(degree) {
		panic(fmt.Sprintf("cluster: invalid SP degree %d", degree))
	}
	if degree <= t.DevicesPerNode {
		return AllToAllTraffic{IntraPeers: degree - 1}
	}
	return AllToAllTraffic{
		IntraPeers: t.DevicesPerNode - 1,
		InterPeers: degree - t.DevicesPerNode,
	}
}

// AllToAllTime returns the wall-clock seconds for one all-to-all that
// reshards a tensor of totalBytes (the full tensor size, e.g. seqLen ×
// hidden × bytesPerElem) over an SP group of the given degree.
//
// Each device holds 1/degree of the tensor and exchanges an equal chunk of
// totalBytes/degree² with every peer. Chunks to same-node peers travel over
// NVLink; chunks to remote peers share the device's slice of the node NIC.
// The two proceed concurrently, so the op finishes when the slower one does.
func (t Topology) AllToAllTime(totalBytes float64, degree int) float64 {
	if degree <= 1 {
		return 0
	}
	tr := t.GroupTraffic(degree)
	chunk := totalBytes / float64(degree*degree)
	intra := float64(tr.IntraPeers) * chunk / t.IntraBW
	inter := float64(tr.InterPeers) * chunk / t.InterBWPerDevice()
	if intra > inter {
		return intra
	}
	return inter
}

// RingTime returns the wall-clock seconds to circulate totalBytes around a
// ring of the given degree (context-parallelism KV exchange): each device
// forwards its chunk degree-1 times; the slowest hop bounds each step.
func (t Topology) RingTime(totalBytes float64, degree int) float64 {
	if degree <= 1 {
		return 0
	}
	chunk := totalBytes / float64(degree)
	hop := chunk / t.IntraBW
	if degree > t.DevicesPerNode {
		// A ring over multiple nodes has at least one inter-node hop per
		// step, and ring steps are lock-stepped on the slowest link.
		hop = chunk / t.InterBWPerDevice()
	}
	return float64(degree-1) * hop
}

// AllGatherTime returns the seconds for an all-gather (or reduce-scatter,
// which is symmetric) of totalBytes over a group of the given degree using a
// ring algorithm.
func (t Topology) AllGatherTime(totalBytes float64, degree int) float64 {
	return t.RingTime(totalBytes, degree)
}
